#pragma once
/// \file cache.hpp
/// Opt-in binary on-disk cache for generated suite graphs.
///
/// Generating the larger Table I graphs (R-MAT at low --denom) costs far
/// more wall time than everything a bench does with them, and every bench
/// binary regenerates them from scratch. The cache stores the finished CSR
/// arrays keyed by (suite name, denom, seed) so repeat runs — sweeps over
/// schemes, partitioners or thread counts — skip the generator entirely.
///
/// The cache is OPT-IN: it activates only when a directory is supplied via
/// `--graph-cache=DIR` or the `SPECKLE_GRAPH_CACHE` environment variable
/// (the flag wins). Correctness never depends on it — a missing, stale,
/// truncated or corrupt file is silently regenerated (and overwritten),
/// and a file from another format version is rejected by the header guard.
///
/// File layout (host-endian; the cache is a local artifact, not an
/// interchange format):
///   u64 magic | u32 version | u32 vid_bytes | u32 eid_bytes | u32 denom
///   | u64 seed | u64 fnv1a64(name) | u64 n | u64 m
///   | eid_t row_offsets[n+1] | vid_t col_indices[m]
/// Every header field is validated on load, then the CSR invariants
/// (monotone offsets, in-range columns, no self loops) are re-checked so a
/// torn or bit-rotted file can never abort the CsrGraph constructor.

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"

namespace speckle::graph {

/// On-disk format version. Bump on any layout change — and on any change
/// to the suite generators, so stale files never masquerade as current.
inline constexpr std::uint32_t kGraphCacheVersion = 1;

/// Resolve the cache directory: `flag` when nonempty, else the
/// SPECKLE_GRAPH_CACHE environment variable, else "" (caching disabled).
std::string resolve_graph_cache_dir(const std::string& flag);

/// The cache file path for (name, denom, seed) under `dir`.
std::string graph_cache_path(const std::string& dir, const std::string& name,
                             std::uint32_t denom, std::uint64_t seed);

/// Load a cached CSR from `path`. Returns false (leaving `out` untouched)
/// when the file is missing, from another format version, keyed for a
/// different (name, denom, seed), truncated, or failing the CSR
/// invariants.
bool load_cached_graph(const std::string& path, const std::string& name,
                       std::uint32_t denom, std::uint64_t seed, CsrGraph* out);

/// Write `g` under `path` (temp file + rename, so a concurrent reader
/// never sees a torn file). Returns false when the directory cannot be
/// created or written; the caller just proceeds uncached.
bool store_cached_graph(const std::string& path, const std::string& name,
                        std::uint32_t denom, std::uint64_t seed,
                        const CsrGraph& g);

/// make_suite_graph with the on-disk cache: a hit loads, a miss generates
/// and stores. Empty `dir` = plain generation (the cache stays opt-in).
CsrGraph make_suite_graph_cached(const std::string& name, std::uint32_t denom,
                                 std::uint64_t seed, const std::string& dir);

}  // namespace speckle::graph
