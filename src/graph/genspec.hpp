#pragma once
/// \file genspec.hpp
/// The unified generator specification — one value that names a synthetic
/// graph completely: model, size, model parameters, seed.
///
/// A GeneratorSpec is THE workload-axis currency: the suite (suite.cpp)
/// describes every Table I graph as one, the on-disk CSR cache keys files
/// by its canonical string (cache.hpp), speckle_gen and the benches parse
/// one from the command line, and bench_huge sweeps a family of them at
/// the 10^8-edge tier.
///
/// Two generation paths share the spec:
///
///  * generate_edges_serial(spec) — the legacy single-stream generators
///    (generators.hpp). This is the byte-stability path: the Table I suite
///    graphs have been generated through these exact RNG streams since
///    PR 1, and every checked-in golden depends on their bytes.
///
///  * generate_graph(spec, pool) — the scale path: KaGen-style sharded
///    generation (a fixed, thread-count-independent chunk decomposition;
///    one hash-derived RNG per chunk) into the streaming parallel CSR
///    builder (build_parallel.hpp). Deterministic for a fixed seed at ANY
///    pool concurrency, but a different — equally valid — sample of the
///    model than the serial path, because the chunk streams are
///    independent by construction.
///
/// Models (KaGen naming, see docs/graphs.md for the parameter table):
///   rmat      Chakrabarti et al. recursive quadrants, per-level noise
///   kron      stochastic Kronecker (R-MAT initiator, zero noise)
///   ba        Barabási–Albert preferential attachment
///             (communication-free Batagelj–Brandes slot resolution)
///   rgg2d     random geometric graph in the unit square
///   grid2d    5-point stencil, optional local "defect" edges
///   grid3d    7-point stencil, optional local "defect" edges
///   localrand locality-windowed random graph (Hamrle3's twin)
///   er        Erdős–Rényi G(n, m)

#include <cstdint>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "support/threadpool.hpp"

namespace speckle::graph {

enum class GenModel : std::uint8_t {
  kRmat,
  kKronecker,
  kBarabasiAlbert,
  kGeometric2d,
  kGrid2d,
  kGrid3d,
  kLocalRandom,
  kErdosRenyi,
};

const char* gen_model_name(GenModel model);
GenModel gen_model_from_name(const std::string& name);  // aborts on unknown

struct GeneratorSpec {
  GenModel model = GenModel::kRmat;
  std::uint64_t num_vertices = 0;  ///< grids derive this from nx*ny(*nz)
  /// Undirected edge draws (rmat/kron/er). 0 = derive from avg_degree.
  std::uint64_t num_edges = 0;
  /// Target average DIRECTED degree (CSR entries per vertex, Table I's
  /// "avg" column). Used to derive num_edges / radius / attach when those
  /// are unset; 0 = model default.
  double avg_degree = 0.0;

  RmatParams quadrants{};      ///< rmat / kron initiator
  std::uint32_t attach = 0;    ///< ba: edges per new vertex (0 = derive)
  double radius = 0.0;         ///< rgg2d: connect radius (0 = derive)
  std::uint32_t nx = 0, ny = 0, nz = 0;  ///< grids (0 = derive square/cube)
  double defects = 0.0;        ///< grids: extra local edges per vertex
  std::uint32_t window = 0;    ///< defect / localrand offset window (0 = derive)
  std::uint32_t deg_lo = 1, deg_hi = 7;  ///< localrand initiated degree range

  std::uint64_t seed = 0;  ///< must be nonzero (seed 0 is rejected loudly)
};

/// Parse "model:key=value,key=value" (e.g. "ba:n=16m,attach=3,seed=7",
/// "kron:scale=24,deg=12", "grid3d:nx=300,ny=300,nz=300,defects=0.5").
/// Size values accept k/m suffixes (decimal); scale=S means n = 2^S.
/// The result is normalized (below). Aborts loudly on unknown models or
/// keys, malformed values, and seed 0.
GeneratorSpec parse_generator_spec(const std::string& text,
                                   std::uint64_t default_seed);

/// Fill every derived field (grid dims from n, edge counts from
/// avg_degree, rgg radius, ba attach, defect window) and validate the
/// result. Aborts loudly on inconsistent parameters and on seed == 0 —
/// the suite's seed rule (PR 5) applies to every generator entry point.
GeneratorSpec normalized(GeneratorSpec spec);

/// Canonical one-line key for a normalized spec: model + every field that
/// influences the output, in fixed order. Equal keys <=> equal graphs (for
/// the same generation path). This string is the on-disk cache key.
std::string canonical_spec_key(const GeneratorSpec& spec);

/// Pre-generation footprint estimate for a normalized spec, for memory
/// budgeting (bench_huge --mem-budget-mb): upper bounds on the undirected
/// edge draws, the directed CSR entries, and the peak bytes the sharded
/// generate + parallel CSR build will hold at once.
struct SpecFootprint {
  std::uint64_t edge_draws = 0;       ///< undirected edges generated
  std::uint64_t directed_edges = 0;   ///< CSR entries upper bound (pre-dedup)
  std::uint64_t build_peak_bytes = 0; ///< shards + fill + compact high-water
};
SpecFootprint estimate_footprint(const GeneratorSpec& spec);

/// The scale path: sharded generation. The chunk decomposition is a
/// function of the spec alone, each chunk draws from its own hash-derived
/// RNG, so the shard contents are independent of the pool's concurrency.
std::vector<EdgeList> generate_shards(const GeneratorSpec& spec,
                                      support::ThreadPool& pool);

/// generate_shards + build_csr_parallel: the full sharded pipeline.
/// Bit-identical output at any pool concurrency.
CsrGraph generate_graph(const GeneratorSpec& spec, support::ThreadPool& pool);

/// generate_graph through the on-disk CSR cache (cache.hpp), keyed by
/// canonical_spec_key. Empty `dir` = plain generation.
CsrGraph generate_graph_cached(const GeneratorSpec& spec,
                               support::ThreadPool& pool,
                               const std::string& dir);

/// The legacy path: one sequential RNG stream through the classic
/// generators, exactly as the Table I suite has always drawn them. The
/// suite's byte-stability (and every checked-in golden) depends on this
/// mapping never changing.
EdgeList generate_edges_serial(const GeneratorSpec& spec);

}  // namespace speckle::graph
