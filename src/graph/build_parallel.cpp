#include "graph/build_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

#include "support/check.hpp"

namespace speckle::graph {

namespace {

/// Vertices per canonicalization task. Fixed grain (not a function of the
/// thread count) so the task decomposition — and with it any failure
/// reproduction — is identical at every --threads=N.
constexpr std::size_t kVertexGrain = 8192;

std::size_t vertex_chunks(vid_t n) { return (static_cast<std::size_t>(n) + kVertexGrain - 1) / kVertexGrain; }

}  // namespace

CsrGraph build_csr_parallel(vid_t num_vertices,
                            const std::vector<EdgeList>& shards,
                            support::ThreadPool& pool,
                            const BuildOptions& opts) {
  const std::size_t n = num_vertices;
  const std::size_t nchunks = vertex_chunks(num_vertices);

  // -- 1. count: per-vertex degree tallies over all shards. Relaxed atomic
  // increments commute, so the totals are schedule-independent.
  std::unique_ptr<std::atomic<eid_t>[]> cursor(new std::atomic<eid_t>[n]);
  pool.parallel_for_deterministic(nchunks, [&](std::size_t c, unsigned) {
    const std::size_t lo = c * kVertexGrain;
    const std::size_t hi = std::min(n, lo + kVertexGrain);
    for (std::size_t v = lo; v < hi; ++v) cursor[v].store(0, std::memory_order_relaxed);
  });
  pool.parallel_for_deterministic(shards.size(), [&](std::size_t s, unsigned) {
    for (const Edge& e : shards[s]) {
      SPECKLE_CHECK(e.src < num_vertices && e.dst < num_vertices,
                    "edge endpoint out of range");
      if (opts.remove_self_loops && e.src == e.dst) continue;
      cursor[e.src].fetch_add(1, std::memory_order_relaxed);
      if (opts.symmetrize) cursor[e.dst].fetch_add(1, std::memory_order_relaxed);
    }
  });

  // -- 2. offsets: exclusive prefix sum, with the cursors rewound to each
  // row's start so the fill pass can claim slots from them.
  std::vector<eid_t> row(n + 1, 0);
  std::uint64_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    row[v] = static_cast<eid_t>(total);
    total += cursor[v].load(std::memory_order_relaxed);
  }
  SPECKLE_CHECK(total <= std::numeric_limits<eid_t>::max(),
                "edge count overflows eid_t");
  row[n] = static_cast<eid_t>(total);
  pool.parallel_for_deterministic(nchunks, [&](std::size_t c, unsigned) {
    const std::size_t lo = c * kVertexGrain;
    const std::size_t hi = std::min(n, lo + kVertexGrain);
    for (std::size_t v = lo; v < hi; ++v) cursor[v].store(row[v], std::memory_order_relaxed);
  });

  // -- 3. fill: every edge claims a slot in its row. The intra-row order
  // depends on the schedule; step 4 canonicalizes it away.
  std::vector<vid_t> col(total);
  pool.parallel_for_deterministic(shards.size(), [&](std::size_t s, unsigned) {
    for (const Edge& e : shards[s]) {
      if (opts.remove_self_loops && e.src == e.dst) continue;
      col[cursor[e.src].fetch_add(1, std::memory_order_relaxed)] = e.dst;
      if (opts.symmetrize) {
        col[cursor[e.dst].fetch_add(1, std::memory_order_relaxed)] = e.src;
      }
    }
  });

  // -- 4. canonicalize: sort each adjacency list (and mark the kept prefix
  // when deduplicating). Per-row work only touches that row's slots, so
  // the result depends on the per-row multiset alone — bit-identical to
  // the serial sort-the-whole-edge-list build at any thread count.
  std::vector<eid_t> kept(opts.remove_duplicates ? n : 0);
  pool.parallel_for_deterministic(nchunks, [&](std::size_t c, unsigned) {
    const std::size_t lo = c * kVertexGrain;
    const std::size_t hi = std::min(n, lo + kVertexGrain);
    for (std::size_t v = lo; v < hi; ++v) {
      vid_t* first = col.data() + row[v];
      vid_t* last = col.data() + row[v + 1];
      std::sort(first, last);
      if (opts.remove_duplicates) {
        kept[v] = static_cast<eid_t>(std::unique(first, last) - first);
      }
    }
  });
  if (!opts.remove_duplicates) return CsrGraph(std::move(row), std::move(col));

  // -- 5. compact the deduplicated rows into their final offsets.
  std::vector<eid_t> final_row(n + 1, 0);
  std::uint64_t final_total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    final_row[v] = static_cast<eid_t>(final_total);
    final_total += kept[v];
  }
  final_row[n] = static_cast<eid_t>(final_total);
  std::vector<vid_t> final_col(final_total);
  pool.parallel_for_deterministic(nchunks, [&](std::size_t c, unsigned) {
    const std::size_t lo = c * kVertexGrain;
    const std::size_t hi = std::min(n, lo + kVertexGrain);
    for (std::size_t v = lo; v < hi; ++v) {
      std::copy_n(col.data() + row[v], kept[v], final_col.data() + final_row[v]);
    }
  });
  return CsrGraph(std::move(final_row), std::move(final_col));
}

}  // namespace speckle::graph
