#include "graph/genspec.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <iomanip>
#include <sstream>
#include <utility>

#include "graph/build_parallel.hpp"
#include "graph/cache.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace speckle::graph {

using support::mix64;
using support::Xoshiro256;

namespace {

// ---------------------------------------------------------------------------
// Chunk plan: a fixed decomposition per spec, never per thread count.
// ---------------------------------------------------------------------------

/// Edge draws per chunk for the edge-stream models (rmat/kron/er).
constexpr std::uint64_t kEdgeGrain = 1ULL << 20;
/// Vertices per chunk for the per-vertex models (ba/localrand/defects).
constexpr std::uint64_t kVertexGrain = 1ULL << 18;
/// Hard cap so tiny grains cannot explode the shard vector.
constexpr std::uint64_t kMaxChunks = 1024;

std::uint64_t chunks_for(std::uint64_t work, std::uint64_t grain) {
  if (work == 0) return 1;
  return std::clamp<std::uint64_t>((work + grain - 1) / grain, 1, kMaxChunks);
}

/// [begin, end) of chunk c when `work` items are split into `chunks`.
std::pair<std::uint64_t, std::uint64_t> chunk_range(std::uint64_t work,
                                                    std::uint64_t chunks,
                                                    std::uint64_t c) {
  const std::uint64_t lo = work * c / chunks;
  const std::uint64_t hi = work * (c + 1) / chunks;
  return {lo, hi};
}

/// One independent RNG per (spec seed, model salt, chunk). Hash-derived so
/// any chunk's stream can be opened without generating its predecessors —
/// the property that makes the decomposition thread-count independent.
Xoshiro256 chunk_rng(std::uint64_t seed, std::uint64_t salt, std::uint64_t chunk) {
  return Xoshiro256(mix64(seed + 0x9E3779B97F4A7C15ULL * (salt + 1)) ^
                    mix64(chunk + 0xC0FFEEULL));
}

std::uint32_t log2_exact(std::uint64_t n, const char* what) {
  SPECKLE_CHECK(n >= 2 && (n & (n - 1)) == 0,
                std::string(what) + " needs a power-of-two vertex count "
                                    "(set scale=S or a power-of-two n)");
  std::uint32_t l = 0;
  while ((1ULL << l) < n) ++l;
  return l;
}

// ---------------------------------------------------------------------------
// Barabási–Albert, communication-free (Batagelj–Brandes slot resolution;
// the scheme KaGen's barabassi.h parallelizes with). Edge slot i belongs to
// vertex i/attach; its target is found by repeatedly re-drawing earlier
// slots' uniform picks from a stateless hash until an even endpoint-array
// position — a source slot, whose vertex is just index arithmetic — is hit.
// ---------------------------------------------------------------------------

/// Uniform in [0, 2*slot + 1), stateless per (seed, slot).
std::uint64_t ba_draw(std::uint64_t seed, std::uint64_t slot) {
  const std::uint64_t x = mix64(seed ^ mix64(slot + 0xba5eba11ULL));
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(x) * (2 * slot + 1);
  return static_cast<std::uint64_t>(wide >> 64);
}

vid_t ba_resolve(std::uint64_t seed, std::uint32_t attach, std::uint64_t slot) {
  std::uint64_t r = ba_draw(seed, slot);
  while (r & 1) r = ba_draw(seed, (r - 1) / 2);  // odd = a target slot: recurse
  return static_cast<vid_t>((r / 2) / attach);   // even = a source slot
}

// ---------------------------------------------------------------------------
// Shared defect-edge draw (grids): the sharded twin of add_local_defects —
// each chunk owns a vertex range and draws its share from its own stream.
// ---------------------------------------------------------------------------

void add_defects_chunk(EdgeList& out, Xoshiro256& rng, std::uint64_t v_lo,
                       std::uint64_t v_hi, std::uint64_t num_vertices,
                       double rate, std::uint32_t window) {
  // Telescoping share: sums to llround(rate * n) across all chunks.
  const auto lo_count = static_cast<std::uint64_t>(std::llround(rate * static_cast<double>(v_lo)));
  const auto hi_count = static_cast<std::uint64_t>(std::llround(rate * static_cast<double>(v_hi)));
  for (std::uint64_t i = lo_count; i < hi_count; ++i) {
    const auto v = static_cast<vid_t>(v_lo + rng.next_below(v_hi - v_lo));
    std::int64_t offset = rng.next_range(1, window);
    if (rng.next_bool(0.5)) offset = -offset;
    const std::int64_t w = static_cast<std::int64_t>(v) + offset;
    if (w < 0 || w >= static_cast<std::int64_t>(num_vertices) ||
        w == static_cast<std::int64_t>(v)) {
      continue;  // falls off the vertex range; skip rather than wrap
    }
    out.push_back({v, static_cast<vid_t>(w)});
  }
}

/// Unit-interval coordinate from a stateless hash (rgg2d point clouds).
double unit_coord(std::uint64_t seed, std::uint64_t index) {
  return static_cast<double>(mix64(seed + index) >> 11) * 0x1.0p-53;
}

}  // namespace

// ---------------------------------------------------------------------------
// Names, parsing, normalization
// ---------------------------------------------------------------------------

const char* gen_model_name(GenModel model) {
  switch (model) {
    case GenModel::kRmat: return "rmat";
    case GenModel::kKronecker: return "kron";
    case GenModel::kBarabasiAlbert: return "ba";
    case GenModel::kGeometric2d: return "rgg2d";
    case GenModel::kGrid2d: return "grid2d";
    case GenModel::kGrid3d: return "grid3d";
    case GenModel::kLocalRandom: return "localrand";
    case GenModel::kErdosRenyi: return "er";
  }
  SPECKLE_UNREACHABLE("bad GenModel");
}

GenModel gen_model_from_name(const std::string& name) {
  for (const GenModel m :
       {GenModel::kRmat, GenModel::kKronecker, GenModel::kBarabasiAlbert,
        GenModel::kGeometric2d, GenModel::kGrid2d, GenModel::kGrid3d,
        GenModel::kLocalRandom, GenModel::kErdosRenyi}) {
    if (name == gen_model_name(m)) return m;
  }
  SPECKLE_CHECK(false, "unknown generator model '" + name +
                           "' (rmat, kron, ba, rgg2d, grid2d, grid3d, "
                           "localrand, er)");
  return GenModel::kRmat;  // unreachable
}

namespace {

std::uint64_t parse_size(const std::string& value, const std::string& key) {
  SPECKLE_CHECK(!value.empty(), "empty value for spec key '" + key + "'");
  std::uint64_t mult = 1;
  std::string digits = value;
  const char suffix = static_cast<char>(std::tolower(digits.back()));
  if (suffix == 'k' || suffix == 'm') {
    mult = suffix == 'k' ? 1000ULL : 1000000ULL;
    digits.pop_back();
  }
  std::size_t used = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(digits, &used);
  } catch (...) {
    used = 0;
  }
  SPECKLE_CHECK(used == digits.size() && !digits.empty(),
                "malformed value '" + value + "' for spec key '" + key + "'");
  return parsed * mult;
}

double parse_real(const std::string& value, const std::string& key) {
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (...) {
    used = 0;
  }
  SPECKLE_CHECK(used == value.size() && !value.empty(),
                "malformed value '" + value + "' for spec key '" + key + "'");
  return parsed;
}

}  // namespace

GeneratorSpec parse_generator_spec(const std::string& text,
                                   std::uint64_t default_seed) {
  GeneratorSpec spec;
  spec.seed = default_seed;
  const std::size_t colon = text.find(':');
  spec.model = gen_model_from_name(text.substr(0, colon));
  if (colon != std::string::npos) {
    std::stringstream args(text.substr(colon + 1));
    std::string pair;
    while (std::getline(args, pair, ',')) {
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      SPECKLE_CHECK(eq != std::string::npos,
                    "spec argument '" + pair + "' is not key=value");
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      if (key == "n") {
        spec.num_vertices = parse_size(value, key);
      } else if (key == "scale") {
        const std::uint64_t s = parse_size(value, key);
        SPECKLE_CHECK(s >= 1 && s <= 31, "scale must be in [1,31]");
        spec.num_vertices = 1ULL << s;
      } else if (key == "edges") {
        spec.num_edges = parse_size(value, key);
      } else if (key == "deg") {
        spec.avg_degree = parse_real(value, key);
      } else if (key == "a") {
        spec.quadrants.a = parse_real(value, key);
      } else if (key == "b") {
        spec.quadrants.b = parse_real(value, key);
      } else if (key == "c") {
        spec.quadrants.c = parse_real(value, key);
      } else if (key == "d") {
        spec.quadrants.d = parse_real(value, key);
      } else if (key == "noise") {
        spec.quadrants.noise = parse_real(value, key);
      } else if (key == "attach") {
        spec.attach = static_cast<std::uint32_t>(parse_size(value, key));
      } else if (key == "radius") {
        spec.radius = parse_real(value, key);
      } else if (key == "nx") {
        spec.nx = static_cast<std::uint32_t>(parse_size(value, key));
      } else if (key == "ny") {
        spec.ny = static_cast<std::uint32_t>(parse_size(value, key));
      } else if (key == "nz") {
        spec.nz = static_cast<std::uint32_t>(parse_size(value, key));
      } else if (key == "defects") {
        spec.defects = parse_real(value, key);
      } else if (key == "window") {
        spec.window = static_cast<std::uint32_t>(parse_size(value, key));
      } else if (key == "deglo") {
        spec.deg_lo = static_cast<std::uint32_t>(parse_size(value, key));
      } else if (key == "deghi") {
        spec.deg_hi = static_cast<std::uint32_t>(parse_size(value, key));
      } else if (key == "seed") {
        spec.seed = parse_size(value, key);
      } else {
        SPECKLE_CHECK(false, "unknown spec key '" + key + "'");
      }
    }
  }
  return normalized(spec);
}

GeneratorSpec normalized(GeneratorSpec spec) {
  // The suite's seed rule (PR 5), applied uniformly: sub-streams are
  // derived as seed+k / seed*k products, which seed 0 collapses into
  // colliding streams — reject loudly at every generator entry point.
  SPECKLE_CHECK(spec.seed != 0,
                "generator seed 0 is reserved; pass a nonzero seed");
  switch (spec.model) {
    case GenModel::kRmat:
    case GenModel::kKronecker: {
      if (spec.num_vertices == 0) spec.num_vertices = 1ULL << 20;
      log2_exact(spec.num_vertices, gen_model_name(spec.model));
      if (spec.avg_degree <= 0.0) spec.avg_degree = 16.0;
      if (spec.num_edges == 0) {
        spec.num_edges = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(spec.num_vertices) * spec.avg_degree / 2.0));
      }
      if (spec.model == GenModel::kKronecker) spec.quadrants.noise = 0.0;
      const double sum = spec.quadrants.a + spec.quadrants.b + spec.quadrants.c +
                         spec.quadrants.d;
      SPECKLE_CHECK(std::abs(sum - 1.0) < 1e-6,
                    "rmat/kron quadrant probabilities must sum to 1");
      break;
    }
    case GenModel::kBarabasiAlbert: {
      if (spec.num_vertices == 0) spec.num_vertices = 1ULL << 20;
      if (spec.avg_degree <= 0.0) spec.avg_degree = 6.0;
      if (spec.attach == 0) {
        spec.attach = static_cast<std::uint32_t>(
            std::max<std::int64_t>(1, std::llround(spec.avg_degree / 2.0)));
      }
      SPECKLE_CHECK(spec.num_vertices > spec.attach, "ba needs n > attach");
      break;
    }
    case GenModel::kGeometric2d: {
      if (spec.num_vertices == 0) spec.num_vertices = 1ULL << 20;
      if (spec.avg_degree <= 0.0) spec.avg_degree = 8.0;
      if (spec.radius <= 0.0) {
        // E[directed degree] = pi * r^2 * n  =>  r = sqrt(deg / (pi * n)).
        spec.radius = std::sqrt(spec.avg_degree /
                                (3.14159265358979323846 *
                                 static_cast<double>(spec.num_vertices)));
      }
      SPECKLE_CHECK(spec.radius > 0.0 && spec.radius < 1.0,
                    "rgg2d radius must land in (0,1)");
      break;
    }
    case GenModel::kGrid2d: {
      if (spec.nx == 0 || spec.ny == 0) {
        SPECKLE_CHECK(spec.num_vertices > 0, "grid2d needs n or nx/ny");
        const auto side = static_cast<std::uint32_t>(std::llround(
            std::sqrt(static_cast<double>(spec.num_vertices))));
        spec.nx = spec.ny = std::max(2u, side);
      }
      spec.num_vertices = static_cast<std::uint64_t>(spec.nx) * spec.ny;
      if (spec.defects > 0.0 && spec.window == 0) spec.window = spec.nx;
      break;
    }
    case GenModel::kGrid3d: {
      if (spec.nx == 0 || spec.ny == 0 || spec.nz == 0) {
        SPECKLE_CHECK(spec.num_vertices > 0, "grid3d needs n or nx/ny/nz");
        const auto side = static_cast<std::uint32_t>(std::llround(
            std::cbrt(static_cast<double>(spec.num_vertices))));
        spec.nx = spec.ny = spec.nz = std::max(2u, side);
      }
      spec.num_vertices =
          static_cast<std::uint64_t>(spec.nx) * spec.ny * spec.nz;
      if (spec.defects > 0.0 && spec.window == 0) spec.window = spec.nx;
      break;
    }
    case GenModel::kLocalRandom: {
      if (spec.num_vertices == 0) spec.num_vertices = 1ULL << 20;
      if (spec.avg_degree > 0.0) {
        spec.deg_lo = 1;
        spec.deg_hi = static_cast<std::uint32_t>(std::max<std::int64_t>(
            1, std::llround(spec.avg_degree - 1.0)));
      }
      SPECKLE_CHECK(spec.deg_lo <= spec.deg_hi,
                    "localrand degree range inverted");
      if (spec.window == 0) {
        spec.window = spec.num_vertices < 2000
                          ? static_cast<std::uint32_t>(
                                std::max<std::uint64_t>(1, spec.num_vertices / 2))
                          : 1000;
      }
      break;
    }
    case GenModel::kErdosRenyi: {
      if (spec.num_vertices == 0) spec.num_vertices = 1ULL << 20;
      if (spec.avg_degree <= 0.0) spec.avg_degree = 8.0;
      if (spec.num_edges == 0) {
        spec.num_edges = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(spec.num_vertices) * spec.avg_degree / 2.0));
      }
      SPECKLE_CHECK(spec.num_vertices >= 2, "er needs at least 2 vertices");
      break;
    }
  }
  SPECKLE_CHECK(spec.num_vertices >= 2, "generator needs at least 2 vertices");
  SPECKLE_CHECK(spec.num_vertices <= 0xFFFFFFFFULL,
                "vertex count overflows vid_t");
  return spec;
}

std::string canonical_spec_key(const GeneratorSpec& spec) {
  std::ostringstream out;
  out << gen_model_name(spec.model) << "|n=" << spec.num_vertices;
  // Doubles print as hexfloat: exact round-trip, no locale/precision drift.
  out << std::hexfloat;
  switch (spec.model) {
    case GenModel::kRmat:
      out << "|m=" << spec.num_edges << "|a=" << spec.quadrants.a
          << "|b=" << spec.quadrants.b << "|c=" << spec.quadrants.c
          << "|d=" << spec.quadrants.d << "|noise=" << spec.quadrants.noise;
      break;
    case GenModel::kKronecker:
      out << "|m=" << spec.num_edges << "|a=" << spec.quadrants.a
          << "|b=" << spec.quadrants.b << "|c=" << spec.quadrants.c
          << "|d=" << spec.quadrants.d;
      break;
    case GenModel::kBarabasiAlbert:
      out << "|attach=" << spec.attach;
      break;
    case GenModel::kGeometric2d:
      out << "|radius=" << spec.radius;
      break;
    case GenModel::kGrid2d:
      out << "|nx=" << spec.nx << "|ny=" << spec.ny
          << "|defects=" << spec.defects << "|window=" << spec.window;
      break;
    case GenModel::kGrid3d:
      out << "|nx=" << spec.nx << "|ny=" << spec.ny << "|nz=" << spec.nz
          << "|defects=" << spec.defects << "|window=" << spec.window;
      break;
    case GenModel::kLocalRandom:
      out << "|deglo=" << spec.deg_lo << "|deghi=" << spec.deg_hi
          << "|window=" << spec.window;
      break;
    case GenModel::kErdosRenyi:
      out << "|m=" << spec.num_edges;
      break;
  }
  out << "|seed=0x" << std::hex << spec.seed;
  return out.str();
}

SpecFootprint estimate_footprint(const GeneratorSpec& spec) {
  SpecFootprint fp;
  const std::uint64_t n = spec.num_vertices;
  switch (spec.model) {
    case GenModel::kRmat:
    case GenModel::kKronecker:
    case GenModel::kErdosRenyi:
      fp.edge_draws = spec.num_edges;
      break;
    case GenModel::kBarabasiAlbert:
      fp.edge_draws = n * spec.attach;
      break;
    case GenModel::kGeometric2d: {
      // E[degree] = pi r^2 n, so E[undirected edges] = n * E[degree] / 2.
      const double degree = 3.14159265358979323846 * spec.radius *
                            spec.radius * static_cast<double>(n);
      const double expect = degree * static_cast<double>(n) / 2.0;
      // 30% head-room over the expectation for Poisson fluctuation.
      fp.edge_draws = static_cast<std::uint64_t>(expect * 1.3) + 1024;
      break;
    }
    case GenModel::kGrid2d:
      fp.edge_draws = 2 * n + static_cast<std::uint64_t>(spec.defects * static_cast<double>(n));
      break;
    case GenModel::kGrid3d:
      fp.edge_draws = 3 * n + static_cast<std::uint64_t>(spec.defects * static_cast<double>(n));
      break;
    case GenModel::kLocalRandom:
      fp.edge_draws = n * spec.deg_hi;  // per-vertex target never exceeds deg_hi
      break;
  }
  fp.directed_edges = 2 * fp.edge_draws;
  // Shards (8 B/edge) + fill column array + compacted column array
  // (4 B/entry each) + the per-vertex row/cursor/kept arrays, plus the
  // rgg2d point cloud when applicable.
  fp.build_peak_bytes = fp.edge_draws * sizeof(Edge) +
                        2 * fp.directed_edges * sizeof(vid_t) + n * 24;
  if (spec.model == GenModel::kGeometric2d) {
    fp.build_peak_bytes += n * (2 * sizeof(double) + 2 * sizeof(vid_t));
  }
  return fp;
}

// ---------------------------------------------------------------------------
// Sharded generation
// ---------------------------------------------------------------------------

namespace {

void rmat_chunks(const GeneratorSpec& spec, std::vector<EdgeList>& shards,
                 support::ThreadPool& pool) {
  const std::uint32_t scale = log2_exact(spec.num_vertices, "rmat/kron");
  RmatParams params = spec.quadrants;
  if (spec.model == GenModel::kKronecker) params.noise = 0.0;
  const std::uint64_t chunks = chunks_for(spec.num_edges, kEdgeGrain);
  shards.resize(chunks);
  pool.parallel_for_deterministic(chunks, [&](std::size_t c, unsigned) {
    const auto [lo, hi] = chunk_range(spec.num_edges, chunks, c);
    Xoshiro256 rng = chunk_rng(spec.seed, 0x41, c);
    EdgeList& out = shards[c];
    out.reserve(hi - lo);
    for (std::uint64_t i = lo; i < hi; ++i) {
      out.push_back(rmat_edge(rng, scale, params));
    }
  });
}

void er_chunks(const GeneratorSpec& spec, std::vector<EdgeList>& shards,
               support::ThreadPool& pool) {
  const std::uint64_t n = spec.num_vertices;
  const std::uint64_t chunks = chunks_for(spec.num_edges, kEdgeGrain);
  shards.resize(chunks);
  pool.parallel_for_deterministic(chunks, [&](std::size_t c, unsigned) {
    const auto [lo, hi] = chunk_range(spec.num_edges, chunks, c);
    Xoshiro256 rng = chunk_rng(spec.seed, 0x45, c);
    EdgeList& out = shards[c];
    out.reserve(hi - lo);
    for (std::uint64_t i = lo; i < hi; ++i) {
      const auto src = static_cast<vid_t>(rng.next_below(n));
      auto dst = static_cast<vid_t>(rng.next_below(n));
      while (dst == src) dst = static_cast<vid_t>(rng.next_below(n));
      out.push_back({src, dst});
    }
  });
}

void ba_chunks(const GeneratorSpec& spec, std::vector<EdgeList>& shards,
               support::ThreadPool& pool) {
  const std::uint64_t n = spec.num_vertices;
  const std::uint32_t attach = spec.attach;
  const std::uint64_t chunks = chunks_for(n, kVertexGrain);
  shards.resize(chunks);
  pool.parallel_for_deterministic(chunks, [&](std::size_t c, unsigned) {
    const auto [lo, hi] = chunk_range(n, chunks, c);
    EdgeList& out = shards[c];
    out.reserve((hi - lo) * attach);
    for (std::uint64_t v = lo; v < hi; ++v) {
      for (std::uint32_t k = 0; k < attach; ++k) {
        const std::uint64_t slot = v * attach + k;
        const vid_t w = ba_resolve(spec.seed, attach, slot);
        if (w != static_cast<vid_t>(v)) out.push_back({static_cast<vid_t>(v), w});
      }
    }
  });
}

void localrand_chunks(const GeneratorSpec& spec, std::vector<EdgeList>& shards,
                      support::ThreadPool& pool) {
  const std::uint64_t n = spec.num_vertices;
  const std::uint64_t chunks = chunks_for(n, kVertexGrain);
  shards.resize(chunks);
  pool.parallel_for_deterministic(chunks, [&](std::size_t c, unsigned) {
    const auto [lo, hi] = chunk_range(n, chunks, c);
    Xoshiro256 rng = chunk_rng(spec.seed, 0x4c, c);
    EdgeList& out = shards[c];
    out.reserve((hi - lo) * (spec.deg_lo + spec.deg_hi) / 2);
    for (std::uint64_t v = lo; v < hi; ++v) {
      const auto target =
          static_cast<vid_t>(rng.next_range(spec.deg_lo, spec.deg_hi));
      for (vid_t j = 0; j < target; ++j) {
        std::int64_t offset = rng.next_range(1, spec.window);
        if (rng.next_bool(0.5)) offset = -offset;
        const std::int64_t w = static_cast<std::int64_t>(v) + offset;
        if (w < 0 || w >= static_cast<std::int64_t>(n)) continue;
        out.push_back({static_cast<vid_t>(v), static_cast<vid_t>(w)});
      }
    }
  });
}

void grid2d_chunks(const GeneratorSpec& spec, std::vector<EdgeList>& shards,
                   support::ThreadPool& pool) {
  const std::uint64_t nx = spec.nx, ny = spec.ny;
  const std::uint64_t n = nx * ny;
  const std::uint64_t chunks =
      chunks_for(ny, std::max<std::uint64_t>(1, kVertexGrain / nx));
  shards.resize(chunks);
  pool.parallel_for_deterministic(chunks, [&](std::size_t c, unsigned) {
    const auto [y_lo, y_hi] = chunk_range(ny, chunks, c);
    EdgeList& out = shards[c];
    out.reserve((y_hi - y_lo) * nx * 2);
    auto id = [nx](std::uint64_t x, std::uint64_t y) {
      return static_cast<vid_t>(y * nx + x);
    };
    for (std::uint64_t y = y_lo; y < y_hi; ++y) {
      for (std::uint64_t x = 0; x < nx; ++x) {
        if (x + 1 < nx) out.push_back({id(x, y), id(x + 1, y)});
        if (y + 1 < ny) out.push_back({id(x, y), id(x, y + 1)});
      }
    }
    if (spec.defects > 0.0) {
      Xoshiro256 rng = chunk_rng(spec.seed, 0x32, c);
      add_defects_chunk(out, rng, y_lo * nx, y_hi * nx, n, spec.defects,
                        spec.window);
    }
  });
}

void grid3d_chunks(const GeneratorSpec& spec, std::vector<EdgeList>& shards,
                   support::ThreadPool& pool) {
  const std::uint64_t nx = spec.nx, ny = spec.ny, nz = spec.nz;
  const std::uint64_t n = nx * ny * nz;
  const std::uint64_t chunks =
      chunks_for(nz, std::max<std::uint64_t>(1, kVertexGrain / (nx * ny)));
  shards.resize(chunks);
  pool.parallel_for_deterministic(chunks, [&](std::size_t c, unsigned) {
    const auto [z_lo, z_hi] = chunk_range(nz, chunks, c);
    EdgeList& out = shards[c];
    out.reserve((z_hi - z_lo) * nx * ny * 3);
    auto id = [nx, ny](std::uint64_t x, std::uint64_t y, std::uint64_t z) {
      return static_cast<vid_t>((z * ny + y) * nx + x);
    };
    for (std::uint64_t z = z_lo; z < z_hi; ++z) {
      for (std::uint64_t y = 0; y < ny; ++y) {
        for (std::uint64_t x = 0; x < nx; ++x) {
          if (x + 1 < nx) out.push_back({id(x, y, z), id(x + 1, y, z)});
          if (y + 1 < ny) out.push_back({id(x, y, z), id(x, y + 1, z)});
          if (z + 1 < nz) out.push_back({id(x, y, z), id(x, y, z + 1)});
        }
      }
    }
    if (spec.defects > 0.0) {
      Xoshiro256 rng = chunk_rng(spec.seed, 0x33, c);
      add_defects_chunk(out, rng, z_lo * nx * ny, z_hi * nx * ny, n,
                        spec.defects, spec.window);
    }
  });
}

void rgg2d_chunks(const GeneratorSpec& spec, std::vector<EdgeList>& shards,
                  support::ThreadPool& pool) {
  const std::uint64_t n = spec.num_vertices;
  const double radius = spec.radius;

  // Stateless point cloud: any chunk could recompute any vertex's
  // coordinates, but materializing them once is cheaper than re-hashing
  // per distance test.
  std::vector<double> xs(n), ys(n);
  const std::uint64_t coord_chunks = chunks_for(n, kVertexGrain);
  pool.parallel_for_deterministic(coord_chunks, [&](std::size_t c, unsigned) {
    const auto [lo, hi] = chunk_range(n, coord_chunks, c);
    for (std::uint64_t v = lo; v < hi; ++v) {
      xs[v] = unit_coord(spec.seed, 2 * v + 1);
      ys[v] = unit_coord(spec.seed, 2 * v + 2);
    }
  });

  // Bucket points into radius-sized cells (two serial counting-sort
  // passes, ascending v, so the per-cell lists are canonical).
  const auto cells = static_cast<std::uint64_t>(std::ceil(1.0 / radius));
  auto cell_of = [&](std::uint64_t v) {
    const auto cx = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(xs[v] / radius), cells - 1);
    const auto cy = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(ys[v] / radius), cells - 1);
    return cy * cells + cx;
  };
  std::vector<eid_t> cell_start(cells * cells + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) ++cell_start[cell_of(v) + 1];
  for (std::size_t i = 1; i < cell_start.size(); ++i) {
    cell_start[i] += cell_start[i - 1];
  }
  std::vector<vid_t> cell_points(n);
  {
    std::vector<eid_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (std::uint64_t v = 0; v < n; ++v) {
      cell_points[cursor[cell_of(v)]++] = static_cast<vid_t>(v);
    }
  }

  // Parallel over cell-row bands; each vertex scans its 3x3 neighborhood
  // and emits pairs (v, w) with w > v once.
  const std::uint64_t chunks = chunks_for(cells, 1);
  shards.resize(chunks);
  const double r2 = radius * radius;
  pool.parallel_for_deterministic(chunks, [&](std::size_t c, unsigned) {
    const auto [cy_lo, cy_hi] = chunk_range(cells, chunks, c);
    EdgeList& out = shards[c];
    for (std::uint64_t cy = cy_lo; cy < cy_hi; ++cy) {
      for (std::uint64_t cx = 0; cx < cells; ++cx) {
        const std::uint64_t cell = cy * cells + cx;
        for (eid_t i = cell_start[cell]; i < cell_start[cell + 1]; ++i) {
          const vid_t v = cell_points[i];
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const std::int64_t ncx = static_cast<std::int64_t>(cx) + dx;
              const std::int64_t ncy = static_cast<std::int64_t>(cy) + dy;
              if (ncx < 0 || ncy < 0 ||
                  ncx >= static_cast<std::int64_t>(cells) ||
                  ncy >= static_cast<std::int64_t>(cells)) {
                continue;
              }
              const std::uint64_t ncell =
                  static_cast<std::uint64_t>(ncy) * cells +
                  static_cast<std::uint64_t>(ncx);
              for (eid_t j = cell_start[ncell]; j < cell_start[ncell + 1];
                   ++j) {
                const vid_t w = cell_points[j];
                if (w <= v) continue;  // emit each pair once
                const double ddx = xs[v] - xs[w];
                const double ddy = ys[v] - ys[w];
                if (ddx * ddx + ddy * ddy <= r2) out.push_back({v, w});
              }
            }
          }
        }
      }
    }
  });
}

}  // namespace

std::vector<EdgeList> generate_shards(const GeneratorSpec& raw,
                                      support::ThreadPool& pool) {
  const GeneratorSpec spec = normalized(raw);
  std::vector<EdgeList> shards;
  switch (spec.model) {
    case GenModel::kRmat:
    case GenModel::kKronecker:
      rmat_chunks(spec, shards, pool);
      break;
    case GenModel::kErdosRenyi:
      er_chunks(spec, shards, pool);
      break;
    case GenModel::kBarabasiAlbert:
      ba_chunks(spec, shards, pool);
      break;
    case GenModel::kLocalRandom:
      localrand_chunks(spec, shards, pool);
      break;
    case GenModel::kGrid2d:
      grid2d_chunks(spec, shards, pool);
      break;
    case GenModel::kGrid3d:
      grid3d_chunks(spec, shards, pool);
      break;
    case GenModel::kGeometric2d:
      rgg2d_chunks(spec, shards, pool);
      break;
  }
  return shards;
}

CsrGraph generate_graph(const GeneratorSpec& raw, support::ThreadPool& pool) {
  const GeneratorSpec spec = normalized(raw);
  const std::vector<EdgeList> shards = generate_shards(spec, pool);
  return build_csr_parallel(static_cast<vid_t>(spec.num_vertices), shards,
                            pool);
}

CsrGraph generate_graph_cached(const GeneratorSpec& raw,
                               support::ThreadPool& pool,
                               const std::string& dir) {
  const GeneratorSpec spec = normalized(raw);
  if (dir.empty()) return generate_graph(spec, pool);
  const std::string key = canonical_spec_key(spec);
  const std::string path = graph_cache_path(dir, key);
  CsrGraph g;
  if (load_cached_graph(path, key, &g)) return g;
  g = generate_graph(spec, pool);
  store_cached_graph(path, key, g);  // best effort
  return g;
}

EdgeList generate_edges_serial(const GeneratorSpec& raw) {
  const GeneratorSpec spec = normalized(raw);
  switch (spec.model) {
    case GenModel::kRmat:
      return rmat(log2_exact(spec.num_vertices, "rmat"), spec.num_edges,
                  spec.quadrants, spec.seed);
    case GenModel::kKronecker:
      return kronecker(log2_exact(spec.num_vertices, "kron"), spec.num_edges,
                       spec.quadrants, spec.seed);
    case GenModel::kBarabasiAlbert:
      return barabasi_albert(static_cast<vid_t>(spec.num_vertices),
                             spec.attach, spec.seed);
    case GenModel::kGeometric2d:
      return geometric(static_cast<vid_t>(spec.num_vertices), spec.radius,
                       spec.seed);
    case GenModel::kGrid2d: {
      EdgeList edges = stencil2d(spec.nx, spec.ny);
      if (spec.defects > 0.0) {
        add_local_defects(edges, static_cast<vid_t>(spec.num_vertices),
                          spec.defects, spec.window, spec.seed);
      }
      return edges;
    }
    case GenModel::kGrid3d: {
      EdgeList edges = stencil3d(spec.nx, spec.ny, spec.nz);
      if (spec.defects > 0.0) {
        add_local_defects(edges, static_cast<vid_t>(spec.num_vertices),
                          spec.defects, spec.window, spec.seed);
      }
      return edges;
    }
    case GenModel::kLocalRandom:
      return local_random(static_cast<vid_t>(spec.num_vertices), spec.deg_lo,
                          spec.deg_hi, spec.window, spec.seed);
    case GenModel::kErdosRenyi:
      return erdos_renyi(static_cast<vid_t>(spec.num_vertices),
                         spec.num_edges, spec.seed);
  }
  SPECKLE_UNREACHABLE("bad GenModel");
}

}  // namespace speckle::graph
