#pragma once
/// \file types.hpp
/// Core integer types for graphs.
///
/// 32-bit vertex and edge ids cover the paper's scale (≤1.6 M vertices,
/// ≤42 M directed edges) with half the memory traffic of 64-bit ids — the
/// same choice CUDA graph codes make, and the one the simulator's
/// coalescing model assumes (8 ids per 32-byte sector, 32 per 128-byte line).

#include <cstdint>
#include <limits>

namespace speckle::graph {

using vid_t = std::uint32_t;  ///< vertex id, 0-based
using eid_t = std::uint32_t;  ///< edge index into the CSR column array

inline constexpr vid_t kInvalidVertex = std::numeric_limits<vid_t>::max();

}  // namespace speckle::graph
