#include "graph/csr_graph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace speckle::graph {

CsrGraph::CsrGraph() : row_offsets_{0} {}

CsrGraph::CsrGraph(std::vector<eid_t> row_offsets, std::vector<vid_t> col_indices)
    : row_offsets_(std::move(row_offsets)), col_indices_(std::move(col_indices)) {
  SPECKLE_CHECK(!row_offsets_.empty(), "row_offsets must have n+1 entries");
  SPECKLE_CHECK(row_offsets_.front() == 0, "row_offsets[0] must be 0");
  SPECKLE_CHECK(row_offsets_.back() == col_indices_.size(),
                "row_offsets[n] must equal the edge count");
  const vid_t n = num_vertices();
  for (std::size_t i = 1; i < row_offsets_.size(); ++i) {
    SPECKLE_CHECK(row_offsets_[i - 1] <= row_offsets_[i],
                  "row_offsets must be non-decreasing");
  }
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t w : neighbors(v)) {
      SPECKLE_CHECK(w < n, "column index out of range");
      SPECKLE_CHECK(w != v, "self loop in CSR graph");
    }
  }
}

vid_t CsrGraph::max_degree() const {
  vid_t best = 0;
  for (vid_t v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

bool CsrGraph::has_edge(vid_t v, vid_t w) const {
  auto adj = neighbors(v);
  return std::binary_search(adj.begin(), adj.end(), w);
}

bool CsrGraph::validate() const {
  if (row_offsets_.empty() || row_offsets_.front() != 0) return false;
  if (row_offsets_.back() != col_indices_.size()) return false;
  const vid_t n = num_vertices();
  for (std::size_t i = 1; i < row_offsets_.size(); ++i) {
    if (row_offsets_[i - 1] > row_offsets_[i]) return false;
  }
  for (vid_t v = 0; v < n; ++v) {
    const auto adj = neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] >= n || adj[i] == v) return false;
      if (i > 0 && adj[i - 1] >= adj[i]) return false;  // sorted, deduplicated
    }
  }
  return true;
}

bool CsrGraph::is_symmetric() const {
  for (vid_t v = 0; v < num_vertices(); ++v) {
    for (vid_t w : neighbors(v)) {
      if (!has_edge(w, v)) return false;
    }
  }
  return true;
}

}  // namespace speckle::graph
