#pragma once
/// \file generators.hpp
/// Synthetic graph generators.
///
/// R-MAT follows Chakrabarti et al. (SDM'04) exactly — the generator the
/// paper uses for rmat-er / rmat-g. The stencil and local-random generators
/// produce the structural twins that stand in for the University of Florida
/// matrices (see DESIGN.md §2): they match the published vertex counts and
/// degree statistics of Table I, which are the properties coloring cost and
/// quality depend on.
///
/// All generators emit *undirected* edges as a directed EdgeList that the
/// caller symmetrizes via build_csr (the default BuildOptions).

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/types.hpp"
#include "support/rng.hpp"

namespace speckle::graph {

/// R-MAT parameters: quadrant probabilities, must sum to ~1.
struct RmatParams {
  double a = 0.25;
  double b = 0.25;
  double c = 0.25;
  double d = 0.25;
  /// Per-level parameter noise, as in the reference implementation, to avoid
  /// perfectly self-similar artifacts.
  double noise = 0.1;
};

/// Draw one R-MAT endpoint pair from `rng` (scale recursion levels,
/// quadrant probabilities + optional per-level noise from `params`). The
/// building block both the serial generators below and the sharded
/// generators (genspec.hpp) consume — one chunk = one rng, many draws.
Edge rmat_edge(support::Xoshiro256& rng, std::uint32_t scale,
               const RmatParams& params);

/// Generate `num_edges` R-MAT edge pairs over 2^scale vertices.
EdgeList rmat(std::uint32_t scale, std::uint64_t num_edges, const RmatParams& params,
              std::uint64_t seed);

/// Stochastic Kronecker graph (Leskovec et al.): recursive descent with a
/// fixed 2x2 initiator (a,b;c,d) — R-MAT with the per-level noise pinned
/// to zero, which keeps the self-similar community structure KaGen's SKG
/// generator produces. `params.noise` is ignored.
EdgeList kronecker(std::uint32_t scale, std::uint64_t num_edges,
                   const RmatParams& params, std::uint64_t seed);

/// Erdős–Rényi G(n, m): m distinct endpoint pairs drawn uniformly.
EdgeList erdos_renyi(vid_t num_vertices, std::uint64_t num_edges, std::uint64_t seed);

/// 2-D 5-point stencil over an nx-by-ny grid (interior degree 4).
EdgeList stencil2d(vid_t nx, vid_t ny);

/// 3-D 7-point stencil over an nx-by-ny-by-nz grid (interior degree 6).
EdgeList stencil3d(vid_t nx, vid_t ny, vid_t nz);

/// Add `extra_per_vertex * n` random short-range "defect" edges to an edge
/// list: each extra edge connects v to a uniform vertex within ±window.
/// Used to roughen stencils into FEM/circuit-like degree distributions.
void add_local_defects(EdgeList& edges, vid_t num_vertices, double extra_per_vertex,
                       vid_t window, std::uint64_t seed);

/// Locality-structured random graph: each vertex v draws a target degree
/// uniformly in [deg_lo, deg_hi] and connects to that many uniform vertices
/// within ±window of v (clamped to the vertex range). Models circuit
/// matrices such as Hamrle3.
EdgeList local_random(vid_t num_vertices, vid_t deg_lo, vid_t deg_hi, vid_t window,
                      std::uint64_t seed);

/// Random geometric disk graph: n points uniform in the unit square,
/// vertices within `radius` connected. Used by the WLAN example.
EdgeList geometric(vid_t num_vertices, double radius, std::uint64_t seed);

/// Ring of n vertices with each vertex also linked to its k nearest
/// neighbors on each side (Watts–Strogatz substrate; handy in tests).
EdgeList ring_lattice(vid_t num_vertices, vid_t k);

/// Watts–Strogatz small world: ring_lattice(n, k) with each edge's far
/// endpoint rewired to a uniform vertex with probability `beta`.
EdgeList watts_strogatz(vid_t num_vertices, vid_t k, double beta, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices with probability proportional to degree. Produces
/// the power-law hubs that stress load balancing (cf. rmat-g).
EdgeList barabasi_albert(vid_t num_vertices, vid_t m, std::uint64_t seed);

/// Complete graph on n vertices (tests: chromatic number = n).
EdgeList complete(vid_t num_vertices);

}  // namespace speckle::graph
