#pragma once
/// \file permute.hpp
/// Vertex relabeling. The paper deliberately does *no* reordering, but
/// tests and the ordering heuristics need controlled relabelings to show
/// that coloring quality is ordering-sensitive and correctness is not.

#include <cstdint>
#include <span>

#include "graph/csr_graph.hpp"

namespace speckle::graph {

/// Relabel: new id of v is perm[v]. perm must be a permutation of [0, n).
CsrGraph permute(const CsrGraph& g, std::span<const vid_t> perm);

/// Relabel with a uniformly random permutation (seeded).
CsrGraph permute_random(const CsrGraph& g, std::uint64_t seed);

}  // namespace speckle::graph
