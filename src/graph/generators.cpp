#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace speckle::graph {

using support::Xoshiro256;

Edge rmat_edge(Xoshiro256& rng, std::uint32_t scale, const RmatParams& params) {
  vid_t src = 0;
  vid_t dst = 0;
  double a = params.a, b = params.b, c = params.c, d = params.d;
  for (std::uint32_t level = 0; level < scale; ++level) {
    const double r = rng.next_double();
    src <<= 1;
    dst <<= 1;
    if (r < a) {
      // top-left quadrant: no bits set
    } else if (r < a + b) {
      dst |= 1;
    } else if (r < a + b + c) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
    if (params.noise > 0.0) {
      // Jitter each quadrant probability by ±noise/2 and renormalize, as
      // the reference R-MAT generator does to break self-similarity.
      auto jitter = [&](double p) {
        return p * (1.0 - params.noise / 2.0 + params.noise * rng.next_double());
      };
      a = jitter(a);
      b = jitter(b);
      c = jitter(c);
      d = jitter(d);
      const double total = a + b + c + d;
      a /= total;
      b /= total;
      c /= total;
      d /= total;
    }
  }
  return {src, dst};
}

namespace {

void check_rmat_args(std::uint32_t scale, const RmatParams& params) {
  SPECKLE_CHECK(scale >= 1 && scale <= 31, "rmat scale must be in [1,31]");
  const double sum = params.a + params.b + params.c + params.d;
  SPECKLE_CHECK(std::abs(sum - 1.0) < 1e-6, "rmat parameters must sum to 1");
}

}  // namespace

EdgeList rmat(std::uint32_t scale, std::uint64_t num_edges, const RmatParams& params,
              std::uint64_t seed) {
  check_rmat_args(scale, params);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    edges.push_back(rmat_edge(rng, scale, params));
  }
  return edges;
}

EdgeList kronecker(std::uint32_t scale, std::uint64_t num_edges,
                   const RmatParams& params, std::uint64_t seed) {
  RmatParams initiator = params;
  initiator.noise = 0.0;
  check_rmat_args(scale, initiator);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    edges.push_back(rmat_edge(rng, scale, initiator));
  }
  return edges;
}

EdgeList erdos_renyi(vid_t num_vertices, std::uint64_t num_edges, std::uint64_t seed) {
  SPECKLE_CHECK(num_vertices >= 2, "erdos_renyi needs at least 2 vertices");
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    vid_t src = static_cast<vid_t>(rng.next_below(num_vertices));
    vid_t dst = static_cast<vid_t>(rng.next_below(num_vertices));
    while (dst == src) dst = static_cast<vid_t>(rng.next_below(num_vertices));
    edges.push_back({src, dst});
  }
  return edges;
}

EdgeList stencil2d(vid_t nx, vid_t ny) {
  SPECKLE_CHECK(nx >= 1 && ny >= 1, "stencil2d needs positive dimensions");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(nx) * ny * 2);
  auto id = [nx](vid_t x, vid_t y) { return y * nx + x; };
  for (vid_t y = 0; y < ny; ++y) {
    for (vid_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) edges.push_back({id(x, y), id(x + 1, y)});
      if (y + 1 < ny) edges.push_back({id(x, y), id(x, y + 1)});
    }
  }
  return edges;
}

EdgeList stencil3d(vid_t nx, vid_t ny, vid_t nz) {
  SPECKLE_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "stencil3d needs positive dimensions");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(nx) * ny * nz * 3);
  auto id = [nx, ny](vid_t x, vid_t y, vid_t z) { return (z * ny + y) * nx + x; };
  for (vid_t z = 0; z < nz; ++z) {
    for (vid_t y = 0; y < ny; ++y) {
      for (vid_t x = 0; x < nx; ++x) {
        if (x + 1 < nx) edges.push_back({id(x, y, z), id(x + 1, y, z)});
        if (y + 1 < ny) edges.push_back({id(x, y, z), id(x, y + 1, z)});
        if (z + 1 < nz) edges.push_back({id(x, y, z), id(x, y, z + 1)});
      }
    }
  }
  return edges;
}

void add_local_defects(EdgeList& edges, vid_t num_vertices, double extra_per_vertex,
                       vid_t window, std::uint64_t seed) {
  SPECKLE_CHECK(window >= 1, "defect window must be >= 1");
  Xoshiro256 rng(seed);
  const auto extra =
      static_cast<std::uint64_t>(extra_per_vertex * static_cast<double>(num_vertices));
  for (std::uint64_t i = 0; i < extra; ++i) {
    vid_t v = static_cast<vid_t>(rng.next_below(num_vertices));
    std::int64_t offset = rng.next_range(1, window);
    if (rng.next_bool(0.5)) offset = -offset;
    std::int64_t w = static_cast<std::int64_t>(v) + offset;
    if (w < 0 || w >= static_cast<std::int64_t>(num_vertices) ||
        w == static_cast<std::int64_t>(v)) {
      continue;  // edge falls off the vertex range; skip rather than wrap
    }
    edges.push_back({v, static_cast<vid_t>(w)});
  }
}

EdgeList local_random(vid_t num_vertices, vid_t deg_lo, vid_t deg_hi, vid_t window,
                      std::uint64_t seed) {
  SPECKLE_CHECK(deg_lo <= deg_hi, "local_random degree range inverted");
  SPECKLE_CHECK(window >= 1, "local_random window must be >= 1");
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * (deg_lo + deg_hi) / 2);
  for (vid_t v = 0; v < num_vertices; ++v) {
    const auto target = static_cast<vid_t>(rng.next_range(deg_lo, deg_hi));
    for (vid_t j = 0; j < target; ++j) {
      std::int64_t offset = rng.next_range(1, window);
      if (rng.next_bool(0.5)) offset = -offset;
      std::int64_t w = static_cast<std::int64_t>(v) + offset;
      if (w < 0 || w >= static_cast<std::int64_t>(num_vertices)) continue;
      edges.push_back({v, static_cast<vid_t>(w)});
    }
  }
  return edges;
}

EdgeList geometric(vid_t num_vertices, double radius, std::uint64_t seed) {
  SPECKLE_CHECK(radius > 0.0 && radius < 1.0, "geometric radius must be in (0,1)");
  Xoshiro256 rng(seed);
  std::vector<double> xs(num_vertices), ys(num_vertices);
  for (vid_t v = 0; v < num_vertices; ++v) {
    xs[v] = rng.next_double();
    ys[v] = rng.next_double();
  }
  // Bucket points into a grid of radius-sized cells; only neighboring cells
  // can contain points within `radius`, making this O(n) for sparse graphs.
  const auto cells = static_cast<vid_t>(std::ceil(1.0 / radius));
  std::vector<std::vector<vid_t>> grid(static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](vid_t v) {
    auto cx = std::min<vid_t>(static_cast<vid_t>(xs[v] / radius), cells - 1);
    auto cy = std::min<vid_t>(static_cast<vid_t>(ys[v] / radius), cells - 1);
    return cy * cells + cx;
  };
  for (vid_t v = 0; v < num_vertices; ++v) grid[cell_of(v)].push_back(v);

  EdgeList edges;
  const double r2 = radius * radius;
  for (vid_t v = 0; v < num_vertices; ++v) {
    const vid_t cx = std::min<vid_t>(static_cast<vid_t>(xs[v] / radius), cells - 1);
    const vid_t cy = std::min<vid_t>(static_cast<vid_t>(ys[v] / radius), cells - 1);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (vid_t w : grid[static_cast<std::size_t>(ny) * cells + nx]) {
          if (w <= v) continue;  // emit each pair once
          const double ddx = xs[v] - xs[w];
          const double ddy = ys[v] - ys[w];
          if (ddx * ddx + ddy * ddy <= r2) edges.push_back({v, w});
        }
      }
    }
  }
  return edges;
}

EdgeList ring_lattice(vid_t num_vertices, vid_t k) {
  SPECKLE_CHECK(num_vertices > 2 * k, "ring_lattice needs n > 2k");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * k);
  for (vid_t v = 0; v < num_vertices; ++v) {
    for (vid_t j = 1; j <= k; ++j) {
      edges.push_back({v, static_cast<vid_t>((v + j) % num_vertices)});
    }
  }
  return edges;
}

EdgeList watts_strogatz(vid_t num_vertices, vid_t k, double beta, std::uint64_t seed) {
  SPECKLE_CHECK(beta >= 0.0 && beta <= 1.0, "watts_strogatz beta must be in [0,1]");
  EdgeList edges = ring_lattice(num_vertices, k);
  Xoshiro256 rng(seed);
  for (Edge& e : edges) {
    if (!rng.next_bool(beta)) continue;
    vid_t target = static_cast<vid_t>(rng.next_below(num_vertices));
    while (target == e.src) target = static_cast<vid_t>(rng.next_below(num_vertices));
    e.dst = target;
  }
  return edges;
}

EdgeList barabasi_albert(vid_t num_vertices, vid_t m, std::uint64_t seed) {
  SPECKLE_CHECK(m >= 1 && num_vertices > m, "barabasi_albert needs n > m >= 1");
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * m);
  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is sampling proportional to degree (the standard BA trick).
  std::vector<vid_t> targets;
  targets.reserve(2 * static_cast<std::size_t>(num_vertices) * m);
  // Seed clique over the first m+1 vertices.
  for (vid_t v = 0; v <= m; ++v) {
    for (vid_t w = v + 1; w <= m; ++w) {
      edges.push_back({v, w});
      targets.push_back(v);
      targets.push_back(w);
    }
  }
  for (vid_t v = m + 1; v < num_vertices; ++v) {
    std::vector<vid_t> chosen;
    while (chosen.size() < m) {
      const vid_t candidate = targets[rng.next_below(targets.size())];
      if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
        chosen.push_back(candidate);
      }
    }
    for (vid_t w : chosen) {
      edges.push_back({v, w});
      targets.push_back(v);
      targets.push_back(w);
    }
  }
  return edges;
}

EdgeList complete(vid_t num_vertices) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * (num_vertices - 1) / 2);
  for (vid_t v = 0; v < num_vertices; ++v) {
    for (vid_t w = v + 1; w < num_vertices; ++w) edges.push_back({v, w});
  }
  return edges;
}

}  // namespace speckle::graph
