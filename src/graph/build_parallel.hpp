#pragma once
/// \file build_parallel.hpp
/// Streaming parallel edge-shards-to-CSR construction.
///
/// The serial builder (builder.hpp) sorts the whole edge list — O(m log m)
/// on one core — which dominates wall time once graphs reach the 10^8-edge
/// tier. This builder takes the edges already split into shards (the unit
/// the sharded generators in genspec.hpp emit), and assembles the CSR with
/// a counting sort:
///
///   1. count    — parallel over shards: per-vertex degree tallies via
///                 relaxed atomic increments (commutative, so the totals do
///                 not depend on the schedule)
///   2. offsets  — serial exclusive prefix sum (O(n), never the bottleneck)
///   3. fill     — parallel over shards: each edge claims a slot in its row
///                 with fetch_add and writes its column index
///   4. canon    — parallel over vertex ranges: sort each adjacency list
///                 (and deduplicate + compact when requested)
///
/// Step 3's intra-row order is schedule-dependent, but step 4 erases it:
/// the final arrays depend only on the per-row edge multisets, so the
/// output is BIT-IDENTICAL to the serial build_csr for the same
/// concatenated input at every thread count. The fuzz suite asserts this
/// byte-for-byte (tests/fuzz_test.cpp).

#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "support/threadpool.hpp"

namespace speckle::graph {

/// Build a CSR graph from edge shards. Equivalent to
/// `build_csr(num_vertices, concat(shards), opts)` — same cleanup
/// (symmetrization, self-loop removal, dedup, sorted adjacency), same
/// bytes — but counting-sort based and parallel over `pool`. Shards may be
/// empty and may hold duplicate or self-loop edges; endpoints >=
/// num_vertices abort. Deterministic at any pool concurrency.
CsrGraph build_csr_parallel(vid_t num_vertices,
                            const std::vector<EdgeList>& shards,
                            support::ThreadPool& pool,
                            const BuildOptions& opts = {});

}  // namespace speckle::graph
