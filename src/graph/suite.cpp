#include "graph/suite.hpp"

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"

namespace speckle::graph {
namespace {

bool is_pow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint32_t log2u(std::uint32_t x) {
  std::uint32_t l = 0;
  while ((1u << l) < x) ++l;
  return l;
}

/// Scale a grid dimension by the cube/square root of denom so the vertex
/// count shrinks by ~denom while the stencil structure is unchanged.
vid_t scale_dim(vid_t dim, std::uint32_t denom, double root) {
  const double factor = std::pow(static_cast<double>(denom), 1.0 / root);
  const auto scaled = static_cast<vid_t>(std::llround(dim / factor));
  return scaled < 3 ? 3 : scaled;
}

}  // namespace

const std::vector<SuiteEntry>& suite_entries() {
  static const std::vector<SuiteEntry> entries = {
      {"rmat-er", "Synthetic", false, {1048576, 20971268, 2, 59, 20.00, 23.37}},
      {"rmat-g", "Synthetic", false, {1048576, 20964268, 0, 899, 20.00, 472.81}},
      {"thermal2", "Thermal Simulation", true, {1228045, 8580313, 1, 11, 6.99, 0.66}},
      {"atmosmodd", "Atmospheric Model", false, {1270432, 8814880, 4, 7, 6.94, 0.06}},
      {"Hamrle3", "Circuit Simulation", false, {1447360, 11028464, 4, 15, 7.62, 7.21}},
      {"G3_circuit", "Circuit Simulation", true, {1585478, 7660826, 2, 6, 4.83, 0.41}},
  };
  return entries;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const SuiteEntry& e : suite_entries()) {
    if (e.name == name) return e;
  }
  SPECKLE_CHECK(false, "unknown suite graph '" + name + "'");
  return suite_entries().front();  // unreachable
}

GeneratorSpec suite_generator_spec(const std::string& name,
                                   std::uint32_t denom, std::uint64_t seed) {
  SPECKLE_CHECK(is_pow2(denom), "suite denom must be a power of two");
  // The sub-seeds below are seed+k offsets and callers derive seed*k
  // products; seed 0 collapses those into colliding streams, so reject it
  // loudly instead of silently producing correlated graphs.
  SPECKLE_CHECK(seed != 0, "suite seed 0 is reserved; pass a nonzero seed");
  GeneratorSpec spec;
  if (name == "rmat-er" || name == "rmat-g") {
    // Paper: 1M-vertex R-MAT, ~21M directed CSR entries -> ~10.5 undirected
    // edges per vertex before dedup. (a,b,c,d) per Section IV.
    const std::uint32_t scale = 20 - log2u(denom);
    spec.model = GenModel::kRmat;
    spec.num_vertices = 1ULL << scale;
    spec.num_edges = spec.num_vertices * 21 / 2;
    if (name == "rmat-g") spec.quadrants = {0.45, 0.15, 0.15, 0.25, 0.1};
    spec.seed = seed;
  } else if (name == "thermal2") {
    const vid_t d = scale_dim(107, denom, 3.0);
    spec.model = GenModel::kGrid3d;
    spec.nx = spec.ny = spec.nz = d;
    spec.defects = 0.5;
    spec.window = d;
    spec.seed = seed + 1;
  } else if (name == "atmosmodd") {
    spec.model = GenModel::kGrid3d;
    spec.nx = scale_dim(108, denom, 3.0);
    spec.ny = scale_dim(108, denom, 3.0);
    spec.nz = scale_dim(109, denom, 3.0);
    spec.seed = seed;
  } else if (name == "Hamrle3") {
    const auto n = static_cast<vid_t>(1447360 / denom);
    spec.model = GenModel::kLocalRandom;
    spec.num_vertices = n;
    spec.deg_lo = 1;
    spec.deg_hi = 7;
    spec.window = n < 2000 ? n / 2 : 1000;
    spec.seed = seed + 2;
  } else if (name == "G3_circuit") {
    const vid_t d = scale_dim(1259, denom, 2.0);
    spec.model = GenModel::kGrid2d;
    spec.nx = spec.ny = d;
    spec.defects = 0.42;
    spec.window = d;
    spec.seed = seed + 3;
  } else {
    SPECKLE_CHECK(false, "unknown suite graph '" + name + "'");
  }
  return normalized(spec);
}

CsrGraph make_suite_graph(const std::string& name, std::uint32_t denom,
                          std::uint64_t seed) {
  // generate_edges_serial replays exactly the RNG streams the suite has
  // always drawn (suite_generator_spec carries the historical seed
  // offsets), so this build is byte-identical to every prior release.
  const GeneratorSpec spec = suite_generator_spec(name, denom, seed);
  return build_csr(static_cast<vid_t>(spec.num_vertices),
                   generate_edges_serial(spec));
}

}  // namespace speckle::graph
