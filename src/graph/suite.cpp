#include "graph/suite.hpp"

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"

namespace speckle::graph {
namespace {

bool is_pow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint32_t log2u(std::uint32_t x) {
  std::uint32_t l = 0;
  while ((1u << l) < x) ++l;
  return l;
}

/// Scale a grid dimension by the cube/square root of denom so the vertex
/// count shrinks by ~denom while the stencil structure is unchanged.
vid_t scale_dim(vid_t dim, std::uint32_t denom, double root) {
  const double factor = std::pow(static_cast<double>(denom), 1.0 / root);
  const auto scaled = static_cast<vid_t>(std::llround(dim / factor));
  return scaled < 3 ? 3 : scaled;
}

}  // namespace

const std::vector<SuiteEntry>& suite_entries() {
  static const std::vector<SuiteEntry> entries = {
      {"rmat-er", "Synthetic", false, {1048576, 20971268, 2, 59, 20.00, 23.37}},
      {"rmat-g", "Synthetic", false, {1048576, 20964268, 0, 899, 20.00, 472.81}},
      {"thermal2", "Thermal Simulation", true, {1228045, 8580313, 1, 11, 6.99, 0.66}},
      {"atmosmodd", "Atmospheric Model", false, {1270432, 8814880, 4, 7, 6.94, 0.06}},
      {"Hamrle3", "Circuit Simulation", false, {1447360, 11028464, 4, 15, 7.62, 7.21}},
      {"G3_circuit", "Circuit Simulation", true, {1585478, 7660826, 2, 6, 4.83, 0.41}},
  };
  return entries;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const SuiteEntry& e : suite_entries()) {
    if (e.name == name) return e;
  }
  SPECKLE_CHECK(false, "unknown suite graph '" + name + "'");
  return suite_entries().front();  // unreachable
}

CsrGraph make_suite_graph(const std::string& name, std::uint32_t denom,
                          std::uint64_t seed) {
  SPECKLE_CHECK(is_pow2(denom), "suite denom must be a power of two");
  // The sub-seeds below are seed+k offsets and callers derive seed*k
  // products; seed 0 collapses those into colliding streams, so reject it
  // loudly instead of silently producing correlated graphs.
  SPECKLE_CHECK(seed != 0, "suite seed 0 is reserved; pass a nonzero seed");
  if (name == "rmat-er" || name == "rmat-g") {
    // Paper: 1M-vertex R-MAT, ~21M directed CSR entries -> ~10.5 undirected
    // edges per vertex before dedup. (a,b,c,d) per Section IV.
    const std::uint32_t scale = 20 - log2u(denom);
    const vid_t n = 1u << scale;
    const std::uint64_t undirected = static_cast<std::uint64_t>(n) * 21 / 2;
    RmatParams params;
    if (name == "rmat-g") params = {0.45, 0.15, 0.15, 0.25, 0.1};
    return build_csr(n, rmat(scale, undirected, params, seed));
  }
  if (name == "thermal2") {
    const vid_t d = scale_dim(107, denom, 3.0);
    EdgeList edges = stencil3d(d, d, d);
    const vid_t n = d * d * d;
    add_local_defects(edges, n, 0.5, d, seed + 1);
    return build_csr(n, std::move(edges));
  }
  if (name == "atmosmodd") {
    const vid_t dx = scale_dim(108, denom, 3.0);
    const vid_t dy = scale_dim(108, denom, 3.0);
    const vid_t dz = scale_dim(109, denom, 3.0);
    return build_csr(dx * dy * dz, stencil3d(dx, dy, dz));
  }
  if (name == "Hamrle3") {
    const auto n = static_cast<vid_t>(1447360 / denom);
    const vid_t window = n < 2000 ? n / 2 : 1000;
    return build_csr(n, local_random(n, 1, 7, window, seed + 2));
  }
  if (name == "G3_circuit") {
    const vid_t d = scale_dim(1259, denom, 2.0);
    EdgeList edges = stencil2d(d, d);
    add_local_defects(edges, d * d, 0.42, d, seed + 3);
    return build_csr(d * d, std::move(edges));
  }
  SPECKLE_CHECK(false, "unknown suite graph '" + name + "'");
  return CsrGraph();  // unreachable
}

}  // namespace speckle::graph
