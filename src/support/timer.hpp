#pragma once
/// \file timer.hpp
/// Wall-clock timing helpers for the CPU-side measurements.
///
/// Simulated-GPU results come from the timing model, not from these timers;
/// wall-clock numbers are reported alongside for the real CPU algorithms
/// (sequential greedy, GM-OpenMP, Jones–Plassmann).

#include <chrono>
#include <cstdint>

namespace speckle::support {

/// Monotonic stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  std::uint64_t microseconds() const {
    return static_cast<std::uint64_t>(seconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Time a callable and return (result unused) elapsed seconds.
template <typename F>
double time_seconds(F&& fn) {
  Timer t;
  fn();
  return t.seconds();
}

}  // namespace speckle::support
