#pragma once
/// \file stats.hpp
/// Summary statistics used by degree reports (Table I) and bench output.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace speckle::support {

/// One-pass summary of a sample: count, min, max, mean, population variance.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double variance = 0.0;  ///< population variance (divides by n), as Table I does

  double stddev() const;
};

/// Summarise a span of values. Empty input yields a zeroed Summary.
Summary summarize(std::span<const double> values);
Summary summarize_u32(std::span<const std::uint32_t> values);

/// Geometric mean; all values must be positive. Used for "average speedup"
/// rows, matching common practice for normalized ratios.
double geomean(std::span<const double> values);

/// Arithmetic mean (0 for empty input).
double mean(std::span<const double> values);

/// p-th percentile (0..100) by linear interpolation on a sorted copy.
double percentile(std::span<const double> values, double p);

/// Streaming accumulator (Welford) for when values are produced one by one.
class Accumulator {
 public:
  void add(double value);
  Summary summary() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace speckle::support
