#include "support/rng.hpp"

#include <numeric>

#include "support/check.hpp"

namespace speckle::support {

std::uint64_t mix64(std::uint64_t value) {
  SplitMix64 sm(value);
  return sm.next();
}

namespace {
std::uint64_t rotl64(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  SPECKLE_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Xoshiro256::next_range(std::int64_t lo, std::int64_t hi) {
  SPECKLE_CHECK(lo <= hi, "next_range requires lo <= hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Xoshiro256::next_bool(double p_true) { return next_double() < p_true; }

std::vector<std::uint32_t> random_permutation(std::uint32_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  Xoshiro256 rng(seed);
  shuffle(perm, rng);
  return perm;
}

}  // namespace speckle::support
