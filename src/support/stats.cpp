#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace speckle::support {

double Summary::stddev() const { return std::sqrt(variance); }

Summary summarize(std::span<const double> values) {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.summary();
}

Summary summarize_u32(std::span<const std::uint32_t> values) {
  Accumulator acc;
  for (std::uint32_t v : values) acc.add(static_cast<double>(v));
  return acc.summary();
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    SPECKLE_CHECK(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double percentile(std::span<const double> values, double p) {
  SPECKLE_CHECK(!values.empty(), "percentile of empty sample");
  SPECKLE_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Accumulator::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

Summary Accumulator::summary() const {
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.min = min_;
  s.max = max_;
  s.mean = mean_;
  s.variance = m2_ / static_cast<double>(count_);
  return s;
}

}  // namespace speckle::support
