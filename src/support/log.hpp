#pragma once
/// \file log.hpp
/// Minimal leveled logging to stderr.
///
/// Benches and examples narrate progress at Info; the simulator emits
/// per-kernel detail at Debug. The level is process-global and settable
/// from the environment (SPECKLE_LOG=debug|info|warn|error) or code.

#include <sstream>
#include <string>

namespace speckle::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current process-wide log level (initialised from $SPECKLE_LOG, default Info).
LogLevel log_level();

/// Override the process-wide log level.
void set_log_level(LogLevel level);

/// Emit one log line (adds level prefix and newline). Prefer the macros below.
void log_line(LogLevel level, const std::string& msg);

}  // namespace speckle::support

#define SPECKLE_LOG_AT(lvl, expr)                                        \
  do {                                                                   \
    if (static_cast<int>(lvl) >=                                         \
        static_cast<int>(::speckle::support::log_level())) {             \
      std::ostringstream speckle_log_oss;                                \
      speckle_log_oss << expr;                                           \
      ::speckle::support::log_line(lvl, speckle_log_oss.str());          \
    }                                                                    \
  } while (0)

#define SPECKLE_DEBUG(expr) SPECKLE_LOG_AT(::speckle::support::LogLevel::kDebug, expr)
#define SPECKLE_INFO(expr) SPECKLE_LOG_AT(::speckle::support::LogLevel::kInfo, expr)
#define SPECKLE_WARN(expr) SPECKLE_LOG_AT(::speckle::support::LogLevel::kWarn, expr)
#define SPECKLE_ERROR(expr) SPECKLE_LOG_AT(::speckle::support::LogLevel::kError, expr)
