#pragma once
/// \file check.hpp
/// Always-on runtime checks and fatal-error reporting.
///
/// Unlike <cassert>, SPECKLE_CHECK stays active in release builds: the
/// simulator and the graph builders validate untrusted structural input
/// (file contents, generator parameters, device addresses), and silently
/// continuing past a violated invariant would corrupt results rather than
/// crash loudly.

#include <cstdio>
#include <cstdlib>
#include <string>

namespace speckle::support {

/// Print a fatal diagnostic and abort. Never returns.
[[noreturn]] inline void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "speckle: fatal: %s (%s:%d)\n", msg.c_str(), file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace speckle::support

/// Abort with a message if `cond` is false. Active in all build types.
#define SPECKLE_CHECK(cond, msg)                                   \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::speckle::support::panic(__FILE__, __LINE__,                \
                                std::string("check failed: ") +    \
                                    #cond + " — " + (msg));        \
    }                                                              \
  } while (0)

/// Unconditional failure (unreachable code paths, exhaustive switches).
#define SPECKLE_UNREACHABLE(msg) \
  ::speckle::support::panic(__FILE__, __LINE__, std::string("unreachable: ") + (msg))
