#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Everything in speckle that involves randomness — graph generators, the
/// Jones–Plassmann priorities, csrcolor's hash functions, test sweeps —
/// takes an explicit 64-bit seed and draws from these generators, so every
/// experiment is bit-reproducible across runs and machines.

#include <cstdint>
#include <vector>

namespace speckle::support {

/// SplitMix64: tiny state, good avalanche; used to seed Xoshiro and as the
/// stateless per-index hash behind csrcolor-style vertex hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a 64-bit value (one SplitMix64 round). Suitable as a
/// hash function family: different `seed` values give independent hashes.
std::uint64_t mix64(std::uint64_t value);

/// Xoshiro256**: the workhorse generator (fast, 256-bit state).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw.
  bool next_bool(double p_true);

 private:
  std::uint64_t s_[4];
};

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& values, Xoshiro256& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(values[i - 1], values[j]);
  }
}

/// A random permutation of [0, n).
std::vector<std::uint32_t> random_permutation(std::uint32_t n, std::uint64_t seed);

}  // namespace speckle::support
