#include "support/threadpool.hpp"

namespace speckle::support {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (unsigned slot = 1; slot < threads; ++slot) {
    workers_.emplace_back([this, slot] { worker_main(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_indices(const IndexFn& fn, unsigned slot) {
  for (;;) {
    std::size_t i;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_ >= count_) return;
      i = next_++;
    }
    try {
      fn(i, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      next_ = count_;  // abandon the remaining indices
      return;
    }
  }
}

void ThreadPool::worker_main(unsigned slot) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const IndexFn* fn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      fn = fn_;
    }
    run_indices(*fn, slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_deterministic(std::size_t count, const IndexFn& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_ = 0;
    error_ = nullptr;
    active_workers_ = static_cast<unsigned>(workers_.size());
    ++epoch_;
  }
  start_cv_.notify_all();
  run_indices(fn, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace speckle::support
