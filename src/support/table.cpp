#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "support/check.hpp"

namespace speckle::support {
namespace {

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SPECKLE_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  SPECKLE_CHECK(!rows_.empty(), "call row() before cell()");
  SPECKLE_CHECK(rows_.back().size() < headers_.size(), "too many cells in row");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell_u64(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell_i64(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell_f(double value, int digits) { return cell(fixed(value, digits)); }
Table& Table::cell_ratio(double value, int digits) {
  return cell(fixed(value, digits) + "x");
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << "  " << text << std::string(widths[c] - text.size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

void Table::print() const { print(std::cout); }

std::string format_si(double value, int digits) {
  const char* suffix = "";
  double scaled = value;
  if (value >= 1e9) {
    scaled = value / 1e9;
    suffix = "G";
  } else if (value >= 1e6) {
    scaled = value / 1e6;
    suffix = "M";
  } else if (value >= 1e3) {
    scaled = value / 1e3;
    suffix = "K";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", digits, scaled, suffix);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

std::string format_cycles(std::uint64_t cycles) {
  std::string digits = std::to_string(cycles);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace speckle::support
