#pragma once
/// \file table.hpp
/// Column-aligned ASCII table printing for bench output, mirroring the
/// rows/series of the paper's tables and figures. Also emits CSV so the
/// series can be re-plotted.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace speckle::support {

/// A simple row/column table. Cells are strings; numeric helpers format
/// with sensible precision. Print as aligned text or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent add_* calls fill it left to right.
  Table& row();

  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell_u64(std::uint64_t value);
  Table& cell_i64(std::int64_t value);
  /// Fixed-point with `digits` decimals.
  Table& cell_f(double value, int digits = 2);
  /// "3.04x"-style ratio cell.
  Table& cell_ratio(double value, int digits = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with padded columns and a header underline.
  void print(std::ostream& os) const;
  /// Render as CSV (no quoting of commas; headers/cells must avoid them).
  void print_csv(std::ostream& os) const;

  /// Convenience: print(std::cout).
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string format_si(double value, int digits = 2);     ///< 1.23M, 45.6K …
std::string format_bytes(std::uint64_t bytes);           ///< 1.2 GiB …
std::string format_cycles(std::uint64_t cycles);         ///< with thousands separators

}  // namespace speckle::support
