#pragma once
/// \file threadpool.hpp
/// A small reusable worker pool with a deterministic parallel-for.
///
/// `parallel_for_deterministic(count, fn)` runs `fn(index, slot)` exactly
/// once for every index in [0, count). Indices are handed out dynamically
/// (chunked work stealing from a shared counter), so the *schedule* is
/// nondeterministic — determinism is the caller's contract: each index must
/// write only to its own output slot (and read only state that is frozen
/// for the duration of the call). `slot` identifies the executing lane in
/// [0, concurrency()): slot 0 is always the calling thread, which
/// participates in the loop; slots 1.. are pool workers. Callers use the
/// slot to index per-lane scratch arenas that are reused across calls.
///
/// The call blocks until every index has run. If any invocation throws, the
/// first exception (in completion order) is rethrown on the calling thread
/// after the loop drains; remaining indices may be skipped.
///
/// A pool constructed with `threads <= 1` spawns no workers and runs every
/// loop inline on the caller — the zero-overhead serial mode.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace speckle::support {

class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread:
  /// `threads - 1` workers are spawned. 0 and 1 both mean "no workers".
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes that can run concurrently (workers + the caller). >= 1.
  unsigned concurrency() const { return static_cast<unsigned>(workers_.size()) + 1; }

  using IndexFn = std::function<void(std::size_t index, unsigned slot)>;

  /// Run fn(i, slot) for every i in [0, count). See file comment.
  void parallel_for_deterministic(std::size_t count, const IndexFn& fn);

 private:
  void worker_main(unsigned slot);
  void run_indices(const IndexFn& fn, unsigned slot);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;      ///< bumped once per parallel_for
  unsigned active_workers_ = 0;  ///< workers still inside the current loop
  bool stopping_ = false;

  // Current job (valid while active_workers_ > 0 or the caller is looping).
  const IndexFn* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;  ///< guarded by mutex_
  std::exception_ptr error_;
};

}  // namespace speckle::support
