#pragma once
/// \file options.hpp
/// Tiny command-line option parser shared by benches and examples.
///
/// Syntax: `--key=value`, `--flag` (boolean true), positional arguments are
/// collected in order. Unknown keys are an error only when validate() is
/// called with a whitelist, so quick experiments stay frictionless.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace speckle::support {

class Options {
 public:
  /// Parse argv (argv[0] skipped). Aborts on malformed input (e.g. "--=x").
  Options(int argc, char** argv);

  /// Typed getters with defaults.
  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  bool has(const std::string& key) const;
  const std::vector<std::string>& positional() const { return positional_; }

  /// Abort with a message listing the offending keys if any parsed key is
  /// not in `known`. Call after all getters so help text can list defaults.
  void validate(const std::vector<std::string>& known) const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace speckle::support
