#include "support/options.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"

namespace speckle::support {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    SPECKLE_CHECK(!body.empty(), "empty option name in '" + arg + "'");
    auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      std::string key = body.substr(0, eq);
      SPECKLE_CHECK(!key.empty(), "empty option name in '" + arg + "'");
      values_[key] = body.substr(eq + 1);
    }
  }
}

std::string Options::get_string(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  SPECKLE_CHECK(end != nullptr && *end == '\0',
                "option --" + key + " expects an integer, got '" + it->second + "'");
  return v;
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  SPECKLE_CHECK(end != nullptr && *end == '\0',
                "option --" + key + " expects a number, got '" + it->second + "'");
  return v;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  SPECKLE_CHECK(false, "option --" + key + " expects a boolean, got '" + v + "'");
  return fallback;
}

bool Options::has(const std::string& key) const { return values_.count(key) != 0; }

void Options::validate(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    (void)value;
    bool ok = std::find(known.begin(), known.end(), key) != known.end();
    SPECKLE_CHECK(ok, "unknown option --" + key);
  }
}

}  // namespace speckle::support
