#include "support/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace speckle::support {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("SPECKLE_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel& level_storage() {
  static LogLevel level = parse_env_level();
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off  ";
  }
  return "?????";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() { return level_storage(); }

void set_log_level(LogLevel level) { level_storage() = level; }

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[speckle %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace speckle::support
