#pragma once
/// \file session.hpp
/// One client connection's state and request dispatcher.
///
/// A Session owns the graphs a client has LOADed (by handle), the latest
/// coloring per handle, and the per-session counters STATS reports. The
/// server processes one request at a time per session (FIFO), so Session
/// itself needs no locking — only the shared GraphRegistry synchronizes
/// across sessions.
///
/// Request lifecycle for a mutation:
///   MUTATE → graph::apply_mutations (copy-on-write off the shared base)
///          → coloring::dirty_from_inserts (which endpoints a new conflict
///            invalidates — deletions never invalidate)
///          → coloring::recolor_region (incremental when the dirty region
///            is under full_threshold of V, from-scratch otherwise)
/// Every response carries only simulated/model quantities — never wall
/// clock — so a trace replay is bit-identical at any --threads count.
///
/// Every input that would trip a SPECKLE_CHECK abort deeper in the library
/// (unknown scheme or suite name, non-power-of-two denom, seed 0, vertex
/// out of range) is pre-validated here and turned into a typed error
/// response: a client can never abort the server.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coloring/coloring.hpp"
#include "coloring/runner.hpp"
#include "graph/csr_graph.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "simt/config.hpp"

namespace speckle::serve {

/// Knobs a Session inherits from the server's command line.
struct SessionConfig {
  std::uint32_t block_size = 128;
  std::uint32_t host_threads = 1;   ///< simulator host threads per request
  std::uint32_t refine_rounds = 0;  ///< iterated-greedy rounds after recolor
  double full_threshold = 0.10;     ///< dirty fraction forcing full recolor
  std::string graph_cache;          ///< on-disk CSR cache dir ("" = off)
};

/// Counters STATS reports; all per-session except the registry views.
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t per_opcode[kNumOpcodes] = {};
  std::uint64_t incremental_recolors = 0;
  std::uint64_t full_recolors = 0;
  std::uint64_t mutations_applied = 0;
};

class Session {
 public:
  Session(GraphRegistry& registry, SessionConfig config)
      : registry_(registry), config_(std::move(config)) {}

  /// Decode one request payload, execute it, return the response payload
  /// (no frame prefix). Total: never throws, never aborts.
  std::vector<std::uint8_t> handle(std::span<const std::uint8_t> payload);

  const ServeStats& stats() const { return stats_; }
  std::size_t num_handles() const { return graphs_.size(); }

 private:
  /// Per-handle state. `base` is the immutable registry graph; the first
  /// MUTATE copies it into `mutated` and later batches rebuild from there.
  struct GraphState {
    std::shared_ptr<const graph::CsrGraph> base;
    std::optional<graph::CsrGraph> mutated;
    std::string key;
    std::uint32_t denom = 1;
    std::uint64_t seed = 0;
    simt::DeviceConfig device;

    bool colored = false;
    coloring::Scheme scheme = coloring::Scheme::kDataLdg;
    coloring::Coloring coloring;
    coloring::color_t num_colors = 0;
    std::uint64_t color_model_ns = 0;  ///< replayed on a COLOR cache hit
    std::uint32_t color_iterations = 0;

    const graph::CsrGraph& current() const {
      return mutated ? *mutated : *base;
    }
  };

  std::vector<std::uint8_t> dispatch(Opcode op, std::uint32_t request_id,
                                     WireReader& body);
  std::vector<std::uint8_t> do_load(std::uint32_t request_id, WireReader& body);
  std::vector<std::uint8_t> do_color(std::uint32_t request_id, WireReader& body);
  std::vector<std::uint8_t> do_query(std::uint32_t request_id, WireReader& body);
  std::vector<std::uint8_t> do_mutate(std::uint32_t request_id, WireReader& body);
  std::vector<std::uint8_t> do_stats(std::uint32_t request_id, WireReader& body);

  GraphState* find_graph(std::uint32_t handle);

  GraphRegistry& registry_;
  SessionConfig config_;
  std::map<std::uint32_t, GraphState> graphs_;
  std::uint32_t next_handle_ = 1;
  ServeStats stats_;
};

}  // namespace speckle::serve
