#pragma once
/// \file server.hpp
/// The speckle_serve frame loop, transports, and worker pool.
///
/// A Server owns the shared GraphRegistry and the shutdown state; each
/// accepted connection gets its own Session and is served by one worker
/// (so requests on a connection are strictly FIFO — the determinism the
/// trace-replay golden depends on). Concurrency lives *across*
/// connections and *inside* the simulator (DeviceConfig::host_threads).
///
/// Transports are a minimal ByteStream interface with three
/// implementations: FdStream (sockets and stdin/stdout, with an optional
/// wake fd so a blocked read returns on shutdown), MemoryStream (in-process
/// tests and bench_serve — no kernel round trips), and whatever a test
/// wants to fake.
///
/// Graceful shutdown: SIGINT/SIGTERM write one byte to a self-pipe that is
/// never drained, so every poll()er — the accept loop and every idle
/// connection read — wakes exactly once and stays woken. In-flight
/// requests complete and their responses are written; only then do
/// connections close and the process exits 0.
///
/// Per-request timeout: the handler runs under std::async and a
/// wait_for(timeout). Expiry fails the *request* (a kTimeout error
/// response) — never the server. The still-running handler is a zombie the
/// loop drains before the next request touches the same session, so
/// session state is never accessed concurrently.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/registry.hpp"
#include "serve/session.hpp"

namespace speckle::serve {

struct ServerOptions {
  SessionConfig session;
  std::uint32_t timeout_ms = 0;     ///< per-request deadline; 0 = none
  std::uint32_t accept_threads = 4; ///< worker pool size for listeners
  std::uint32_t test_delay_ms = 0;  ///< test hook: stall each request
};

/// Result of a blocking exact-length read.
enum class ReadStatus {
  kOk,         ///< all bytes delivered
  kEof,        ///< clean end-of-stream before the first byte
  kTruncated,  ///< transport error, or stream ended mid-read
};

class ByteStream {
 public:
  virtual ~ByteStream() = default;
  virtual ReadStatus read_exact(std::uint8_t* buf, std::size_t count) = 0;
  virtual bool write_all(const std::uint8_t* buf, std::size_t count) = 0;
};

/// File-descriptor transport. When `wake_fd` >= 0, a read blocked waiting
/// for the next frame also polls it and reports kEof once it becomes
/// readable (the shutdown self-pipe). Does not own the fds.
class FdStream : public ByteStream {
 public:
  FdStream(int read_fd, int write_fd, int wake_fd = -1)
      : read_fd_(read_fd), write_fd_(write_fd), wake_fd_(wake_fd) {}
  ReadStatus read_exact(std::uint8_t* buf, std::size_t count) override;
  bool write_all(const std::uint8_t* buf, std::size_t count) override;

 private:
  int read_fd_;
  int write_fd_;
  int wake_fd_;
};

/// In-memory transport: pre-fed input, captured output. Test/bench only.
class MemoryStream : public ByteStream {
 public:
  void feed(std::span<const std::uint8_t> bytes) {
    input_.insert(input_.end(), bytes.begin(), bytes.end());
  }
  ReadStatus read_exact(std::uint8_t* buf, std::size_t count) override;
  bool write_all(const std::uint8_t* buf, std::size_t count) override;
  const std::vector<std::uint8_t>& output() const { return output_; }

 private:
  std::vector<std::uint8_t> input_;
  std::size_t pos_ = 0;
  std::vector<std::uint8_t> output_;
};

class Server {
 public:
  explicit Server(ServerOptions opts) : opts_(std::move(opts)) {}

  /// Serve one connection until EOF, a fatal framing violation, or
  /// shutdown. Returns the number of requests answered.
  std::uint64_t serve_stream(ByteStream& stream);

  GraphRegistry& registry() { return registry_; }
  const ServerOptions& options() const { return opts_; }

  void request_shutdown() { shutdown_.store(true, std::memory_order_release); }
  bool shutting_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  ServerOptions opts_;
  GraphRegistry registry_;
  std::atomic<bool> shutdown_{false};
};

/// Install SIGINT/SIGTERM handlers that write the self-pipe and flag
/// `server` for shutdown. Returns the pipe's read end — pass it to every
/// FdStream as `wake_fd`. The pipe is intentionally never drained.
int install_shutdown_signals(Server& server);

/// Serve stdin/stdout until EOF or shutdown. Returns the process exit code.
int run_stdio(Server& server, int wake_fd);

/// Listen on a unix-domain socket; a pool of options().accept_threads
/// workers serves connections. Returns the process exit code (0 on a
/// signal-driven drain).
int run_unix(Server& server, const std::string& path, int wake_fd);

/// Same over TCP on 127.0.0.1:port.
int run_tcp(Server& server, std::uint16_t port, int wake_fd);

}  // namespace speckle::serve
