#pragma once
/// \file registry.hpp
/// Server-global graph registry: one immutable CSR per key, generated at
/// most once no matter how many sessions LOAD it concurrently.
///
/// Concurrency contract (the satellite test in serve_session_test.cpp):
/// the first loader of a key installs a shared_future under the lock and
/// generates *outside* it; every concurrent loader of the same key blocks
/// on that future and receives the same shared_ptr — a single generation,
/// and no session can observe a torn/partial graph because the future only
/// becomes ready with a fully constructed CsrGraph. A generator that
/// throws propagates the exception to every waiter and evicts the entry,
/// so a later LOAD can retry (e.g. a file that has appeared since).
///
/// Sessions never mutate registry graphs: MUTATE copies-on-write into
/// session-local state (session.hpp), so the dedup is safe across
/// sessions that diverge under mutation.

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/csr_graph.hpp"

namespace speckle::serve {

class GraphRegistry {
 public:
  using GraphPtr = std::shared_ptr<const graph::CsrGraph>;
  using Generator = std::function<GraphPtr()>;

  struct LoadResult {
    GraphPtr graph;
    bool fresh = false;  ///< this call ran the generator (not a dedup hit)
  };

  /// Load-or-wait. `gen` runs at most once per key across all threads.
  /// Rethrows the generator's exception (to every concurrent waiter).
  LoadResult load(const std::string& key, const Generator& gen);

  /// Distinct keys currently resident.
  std::size_t size() const;
  /// Total generator invocations since construction (== size() unless a
  /// generation failed and was retried, or distinct keys were evicted).
  std::uint64_t generations() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_future<GraphPtr>> entries_;
  std::uint64_t generations_ = 0;
};

}  // namespace speckle::serve
