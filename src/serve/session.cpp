#include "serve/session.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "coloring/recolor.hpp"
#include "coloring/refine.hpp"
#include "graph/cache.hpp"
#include "graph/matrix_market.hpp"
#include "graph/mutate.hpp"
#include "graph/suite.hpp"

namespace speckle::serve {
namespace {

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

bool is_suite_name(const std::string& key) {
  for (const auto& entry : graph::suite_entries()) {
    if (entry.name == key) return true;
  }
  return false;
}

/// scheme_from_name without the abort: false on unknown names.
bool lookup_scheme(const std::string& name, coloring::Scheme* out) {
  for (coloring::Scheme s : coloring::all_schemes()) {
    if (name == coloring::scheme_name(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

std::uint64_t to_model_ns(double model_ms) {
  return static_cast<std::uint64_t>(model_ms * 1e6);
}

}  // namespace

std::vector<std::uint8_t> Session::handle(
    std::span<const std::uint8_t> payload) {
  ++stats_.requests;
  if (payload.size() < kPayloadHeaderBytes) {
    ++stats_.errors;
    return make_error(Status::kBadFrame, 0, "payload shorter than header");
  }
  WireReader reader(payload);
  const std::uint8_t op_byte = reader.u8();
  const std::uint32_t request_id = reader.u32();
  if (op_byte < 1 || op_byte > kNumOpcodes) {
    ++stats_.errors;
    return make_error(Status::kBadOpcode, request_id,
                      "unknown opcode " + std::to_string(op_byte));
  }
  const auto op = static_cast<Opcode>(op_byte);
  ++stats_.per_opcode[op_byte - 1];
  std::vector<std::uint8_t> response = dispatch(op, request_id, reader);
  if (!response.empty() &&
      response[0] != static_cast<std::uint8_t>(Status::kOk)) {
    ++stats_.errors;
  }
  return response;
}

std::vector<std::uint8_t> Session::dispatch(Opcode op,
                                            std::uint32_t request_id,
                                            WireReader& body) {
  switch (op) {
    case Opcode::kLoad: return do_load(request_id, body);
    case Opcode::kColor: return do_color(request_id, body);
    case Opcode::kQuery: return do_query(request_id, body);
    case Opcode::kMutate: return do_mutate(request_id, body);
    case Opcode::kStats: return do_stats(request_id, body);
  }
  return make_error(Status::kInternal, request_id, "unreachable opcode");
}

Session::GraphState* Session::find_graph(std::uint32_t handle) {
  auto it = graphs_.find(handle);
  return it == graphs_.end() ? nullptr : &it->second;
}

// LOAD body:  str key | u32 denom | u64 seed
// response:   u32 handle | u64 n | u64 m | u8 fresh
std::vector<std::uint8_t> Session::do_load(std::uint32_t request_id,
                                           WireReader& body) {
  const std::string key = body.str();
  const std::uint32_t denom = body.u32();
  const std::uint64_t seed = body.u64();
  if (!body.done()) {
    return make_error(Status::kBadRequest, request_id, "malformed LOAD body");
  }
  if (key.empty()) {
    return make_error(Status::kBadRequest, request_id, "empty graph key");
  }
  if (!is_pow2(denom)) {
    return make_error(Status::kBadRequest, request_id,
                      "denom must be a power of two");
  }

  const bool suite = is_suite_name(key);
  if (suite && seed == 0) {
    return make_error(Status::kBadRequest, request_id,
                      "suite seed 0 is reserved; pass a nonzero seed");
  }

  // Suite graphs dedup on the full generation key; files on the path (the
  // denom only scales the simulated device, not the file contents).
  const std::string registry_key =
      suite ? "suite:" + key + "/" + std::to_string(denom) + "/" +
                  std::to_string(seed)
            : "file:" + key;
  GraphRegistry::LoadResult loaded;
  try {
    loaded = registry_.load(registry_key, [&]() -> GraphRegistry::GraphPtr {
      if (suite) {
        return std::make_shared<const graph::CsrGraph>(
            graph::make_suite_graph_cached(key, denom, seed,
                                           config_.graph_cache));
      }
      return std::make_shared<const graph::CsrGraph>(
          graph::read_matrix_market(key));
    });
  } catch (const std::exception& e) {
    return make_error(Status::kLoadFailed, request_id, e.what());
  }

  GraphState state;
  state.base = loaded.graph;
  state.key = key;
  state.denom = denom;
  state.seed = suite ? seed : 0;
  state.device = simt::DeviceConfig::k20c().scaled(denom);
  state.device.host_threads = config_.host_threads;
  const std::uint32_t handle = next_handle_++;
  const graph::CsrGraph& g = *state.base;

  WireWriter resp;
  resp.u32(handle);
  resp.u64(g.num_vertices());
  resp.u64(g.num_edges());
  resp.u8(loaded.fresh ? 1 : 0);
  graphs_.emplace(handle, std::move(state));
  return make_response(Status::kOk, request_id, resp.bytes());
}

// COLOR body: u32 handle | str scheme | u8 flags (bit0: refine after)
// response:   u32 num_colors | u32 iterations | u8 cached | u64 model_ns
std::vector<std::uint8_t> Session::do_color(std::uint32_t request_id,
                                            WireReader& body) {
  const std::uint32_t handle = body.u32();
  const std::string scheme_name = body.str();
  const std::uint8_t flags = body.u8();
  if (!body.done()) {
    return make_error(Status::kBadRequest, request_id, "malformed COLOR body");
  }
  GraphState* state = find_graph(handle);
  if (state == nullptr) {
    return make_error(Status::kUnknownGraph, request_id,
                      "no graph with handle " + std::to_string(handle));
  }
  coloring::Scheme scheme;
  if (!lookup_scheme(scheme_name, &scheme)) {
    return make_error(Status::kUnknownScheme, request_id,
                      "unknown scheme '" + scheme_name + "'");
  }
  const bool refine = (flags & 1U) != 0;

  // Session-level cache: an unchanged graph colored with the same scheme
  // replays the stored result instead of re-simulating.
  const bool cached = state->colored && state->scheme == scheme && !refine;
  if (!cached) {
    coloring::RunOptions opts;
    opts.block_size = config_.block_size;
    opts.scale_caches(state->denom);
    opts.device.host_threads = config_.host_threads;
    coloring::RunResult r =
        coloring::run_scheme(scheme, state->current(), opts);
    state->colored = true;
    state->scheme = scheme;
    state->coloring = std::move(r.coloring);
    state->num_colors = r.num_colors;
    state->color_iterations = r.iterations;
    state->color_model_ns = to_model_ns(r.model_ms);
    if (refine) {
      coloring::RefineOptions ro;
      ro.rounds = config_.refine_rounds > 0 ? config_.refine_rounds : 4;
      coloring::RefineResult rr = coloring::iterated_greedy(
          state->current(), std::move(state->coloring), ro);
      state->coloring = std::move(rr.coloring);
      state->num_colors = rr.colors_after;
    }
  }

  WireWriter resp;
  resp.u32(state->num_colors);
  resp.u32(state->color_iterations);
  resp.u8(cached ? 1 : 0);
  resp.u64(state->color_model_ns);
  return make_response(Status::kOk, request_id, resp.bytes());
}

// QUERY body: u32 handle | u8 what | u64 arg
// response:   kVertexColor → u32 color
//             kNumColors   → u32 num_colors
//             kGraphStats  → u64 n | u64 m | u64 min_deg | u64 max_deg
std::vector<std::uint8_t> Session::do_query(std::uint32_t request_id,
                                            WireReader& body) {
  const std::uint32_t handle = body.u32();
  const std::uint8_t what_byte = body.u8();
  const std::uint64_t arg = body.u64();
  if (!body.done()) {
    return make_error(Status::kBadRequest, request_id, "malformed QUERY body");
  }
  GraphState* state = find_graph(handle);
  if (state == nullptr) {
    return make_error(Status::kUnknownGraph, request_id,
                      "no graph with handle " + std::to_string(handle));
  }
  WireWriter resp;
  switch (static_cast<QueryWhat>(what_byte)) {
    case QueryWhat::kVertexColor: {
      if (!state->colored) {
        return make_error(Status::kBadRequest, request_id,
                          "graph not colored yet");
      }
      if (arg >= state->coloring.size()) {
        return make_error(Status::kBadVertex, request_id,
                          "vertex " + std::to_string(arg) + " out of range");
      }
      resp.u32(state->coloring[static_cast<std::size_t>(arg)]);
      break;
    }
    case QueryWhat::kNumColors: {
      if (!state->colored) {
        return make_error(Status::kBadRequest, request_id,
                          "graph not colored yet");
      }
      resp.u32(state->num_colors);
      break;
    }
    case QueryWhat::kGraphStats: {
      const graph::CsrGraph& g = state->current();
      std::uint64_t min_deg = 0;
      std::uint64_t max_deg = 0;
      const graph::vid_t n = g.num_vertices();
      if (n > 0) {
        min_deg = ~std::uint64_t{0};
        for (graph::vid_t v = 0; v < n; ++v) {
          const std::uint64_t deg = g.degree(v);
          min_deg = std::min(min_deg, deg);
          max_deg = std::max(max_deg, deg);
        }
      }
      resp.u64(n);
      resp.u64(g.num_edges());
      resp.u64(min_deg);
      resp.u64(max_deg);
      break;
    }
    default:
      return make_error(Status::kBadRequest, request_id,
                        "unknown query selector " + std::to_string(what_byte));
  }
  return make_response(Status::kOk, request_id, resp.bytes());
}

// MUTATE body: u32 handle | u32 count | count × (u8 op | u64 u | u64 v)
// response:    u32 applied | u32 skipped | u32 dirty
//              | u8 mode (0 uncolored / 1 incremental / 2 full)
//              | u32 num_colors | u32 iterations | u64 model_ns
std::vector<std::uint8_t> Session::do_mutate(std::uint32_t request_id,
                                             WireReader& body) {
  const std::uint32_t handle = body.u32();
  const std::uint32_t count = body.u32();
  constexpr std::size_t kEntryBytes = 1 + 8 + 8;
  if (!body.ok() || body.remaining() != count * kEntryBytes) {
    return make_error(Status::kBadRequest, request_id,
                      "malformed MUTATE body");
  }
  GraphState* state = find_graph(handle);
  if (state == nullptr) {
    return make_error(Status::kUnknownGraph, request_id,
                      "no graph with handle " + std::to_string(handle));
  }
  const graph::vid_t n = state->current().num_vertices();
  std::vector<graph::EdgeMutation> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t kind = body.u8();
    const std::uint64_t u = body.u64();
    const std::uint64_t v = body.u64();
    if (kind > 1) {
      return make_error(Status::kBadRequest, request_id,
                        "mutation kind must be 0 (insert) or 1 (delete)");
    }
    if (u >= n || v >= n) {
      return make_error(Status::kBadVertex, request_id,
                        "mutation endpoint out of range");
    }
    batch.push_back({static_cast<graph::EdgeMutation::Kind>(kind),
                     static_cast<graph::vid_t>(u),
                     static_cast<graph::vid_t>(v)});
  }

  graph::MutationOutcome outcome =
      graph::apply_mutations(state->current(), batch);
  stats_.mutations_applied += outcome.applied;

  std::uint32_t dirty_size = 0;
  std::uint8_t mode = 0;
  std::uint32_t iterations = 0;
  std::uint64_t model_ns = 0;
  if (state->colored) {
    const std::vector<graph::vid_t> dirty =
        coloring::dirty_from_inserts(state->coloring, outcome.inserted);
    dirty_size = static_cast<std::uint32_t>(dirty.size());
    coloring::RecolorOptions opts;
    opts.block_size = config_.block_size;
    opts.use_ldg = true;
    opts.device = state->device;
    opts.full_threshold = config_.full_threshold;
    opts.refine_rounds = config_.refine_rounds;
    coloring::RecolorResult r = coloring::recolor_region(
        outcome.graph, state->coloring, dirty, opts);
    mode = r.full ? 2 : 1;
    if (r.full) {
      ++stats_.full_recolors;
    } else {
      ++stats_.incremental_recolors;
    }
    iterations = r.iterations;
    model_ns = to_model_ns(r.model_ms);
    state->coloring = std::move(r.coloring);
    state->num_colors = r.num_colors;
  }
  state->mutated = std::move(outcome.graph);

  WireWriter resp;
  resp.u32(outcome.applied);
  resp.u32(outcome.skipped);
  resp.u32(dirty_size);
  resp.u8(mode);
  resp.u32(state->num_colors);
  resp.u32(iterations);
  resp.u64(model_ns);
  return make_response(Status::kOk, request_id, resp.bytes());
}

// STATS body: empty
// response:   u64 requests | u64 errors | 5 × u64 per-opcode
//             | u64 registry_graphs | u64 registry_generations
//             | u64 incremental_recolors | u64 full_recolors
//             | u64 mutations_applied | u32 handles
std::vector<std::uint8_t> Session::do_stats(std::uint32_t request_id,
                                            WireReader& body) {
  if (!body.done()) {
    return make_error(Status::kBadRequest, request_id, "STATS takes no body");
  }
  WireWriter resp;
  resp.u64(stats_.requests);
  resp.u64(stats_.errors);
  for (std::uint64_t count : stats_.per_opcode) resp.u64(count);
  resp.u64(registry_.size());
  resp.u64(registry_.generations());
  resp.u64(stats_.incremental_recolors);
  resp.u64(stats_.full_recolors);
  resp.u64(stats_.mutations_applied);
  resp.u32(static_cast<std::uint32_t>(graphs_.size()));
  return make_response(Status::kOk, request_id, resp.bytes());
}

}  // namespace speckle::serve
