#include "serve/registry.hpp"

namespace speckle::serve {

GraphRegistry::LoadResult GraphRegistry::load(const std::string& key,
                                              const Generator& gen) {
  std::promise<GraphPtr> promise;
  std::shared_future<GraphPtr> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      future = it->second;  // dedup hit; wait outside the lock
    } else {
      future = promise.get_future().share();
      entries_.emplace(key, future);
      ++generations_;
      owner = true;
    }
  }
  if (owner) {
    try {
      promise.set_value(gen());
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);  // let a later LOAD retry
    }
  }
  return {future.get(), owner};  // get() rethrows a generator failure
}

std::size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t GraphRegistry::generations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generations_;
}

}  // namespace speckle::serve
