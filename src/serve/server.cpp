#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "serve/protocol.hpp"

namespace speckle::serve {
namespace {

std::uint32_t decode_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Best-effort request id for error responses on requests we could not
/// dispatch (the client can still correlate the failure).
std::uint32_t peek_request_id(std::span<const std::uint8_t> payload) {
  if (payload.size() < kPayloadHeaderBytes) return 0;
  return decode_u32le(payload.data() + 1);
}

bool write_frame(ByteStream& stream, std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame = make_frame(payload);
  return stream.write_all(frame.data(), frame.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// Transports

ReadStatus FdStream::read_exact(std::uint8_t* buf, std::size_t count) {
  std::size_t got = 0;
  while (got < count) {
    if (wake_fd_ >= 0) {
      // Block until data or shutdown. Data that is already in flight wins,
      // so a pipelined request ahead of the signal still gets served.
      struct pollfd fds[2];
      fds[0] = {read_fd_, POLLIN, 0};
      fds[1] = {wake_fd_, POLLIN, 0};
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return ReadStatus::kTruncated;  // transport error, not a clean close
      }
      if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        // Only the wake fd fired: shut down. Mid-frame this is a truncation
        // (the peer will never get the rest served anyway).
        return got == 0 ? ReadStatus::kEof : ReadStatus::kTruncated;
      }
    }
    const ssize_t r = ::read(read_fd_, buf + got, count - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kTruncated;  // transport error, not a clean close
    }
    if (r == 0) {
      return got == 0 ? ReadStatus::kEof : ReadStatus::kTruncated;
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadStatus::kOk;
}

bool FdStream::write_all(const std::uint8_t* buf, std::size_t count) {
  std::size_t sent = 0;
  while (sent < count) {
    const ssize_t w = ::write(write_fd_, buf + sent, count - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

ReadStatus MemoryStream::read_exact(std::uint8_t* buf, std::size_t count) {
  const std::size_t available = input_.size() - pos_;
  if (available == 0 && count > 0) return ReadStatus::kEof;
  if (available < count) {
    pos_ = input_.size();
    return ReadStatus::kTruncated;
  }
  std::memcpy(buf, input_.data() + pos_, count);
  pos_ += count;
  return ReadStatus::kOk;
}

bool MemoryStream::write_all(const std::uint8_t* buf, std::size_t count) {
  output_.insert(output_.end(), buf, buf + count);
  return true;
}

// ---------------------------------------------------------------------------
// Frame loop

std::uint64_t Server::serve_stream(ByteStream& stream) {
  Session session(registry_, opts_.session);
  std::uint64_t served = 0;
  // A timed-out handler keeps running here until it finishes; it is always
  // drained before the next request may touch the session.
  std::future<std::vector<std::uint8_t>> zombie;

  for (;;) {
    std::uint8_t prefix[kFramePrefixBytes];
    const ReadStatus ps = stream.read_exact(prefix, sizeof(prefix));
    if (ps == ReadStatus::kEof) break;
    if (ps == ReadStatus::kTruncated) {
      write_frame(stream,
                  make_error(Status::kBadFrame, 0, "truncated frame prefix"));
      break;
    }
    const std::uint32_t length = decode_u32le(prefix);
    if (length > kMaxFrameBytes) {
      // A lying prefix is unrecoverable: the stream cannot be resynced.
      write_frame(stream, make_error(Status::kBadFrame, 0,
                                     "length prefix exceeds frame cap"));
      break;
    }
    std::vector<std::uint8_t> payload(length);
    if (length > 0 &&
        stream.read_exact(payload.data(), length) != ReadStatus::kOk) {
      write_frame(stream,
                  make_error(Status::kBadFrame, 0, "truncated frame payload"));
      break;
    }

    if (zombie.valid()) {
      // Drain the previous timed-out request before this one may run.
      zombie.get();
      zombie = {};
    }
    const std::uint32_t request_id = peek_request_id(payload);
    if (shutting_down()) {
      write_frame(stream, make_error(Status::kShuttingDown, request_id,
                                     "server is draining"));
      break;
    }

    std::vector<std::uint8_t> response;
    const std::uint32_t delay = opts_.test_delay_ms;
    // The task owns the payload: a timed-out handler keeps running as a
    // zombie past this loop iteration, so it must not borrow loop locals.
    auto run = [&session, payload = std::move(payload), delay]() {
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      return session.handle(payload);
    };
    if (opts_.timeout_ms == 0) {
      response = run();
    } else {
      auto pending = std::async(std::launch::async, std::move(run));
      if (pending.wait_for(std::chrono::milliseconds(opts_.timeout_ms)) ==
          std::future_status::ready) {
        response = pending.get();
      } else {
        response = make_error(Status::kTimeout, request_id,
                              "request deadline expired");
        zombie = std::move(pending);
      }
    }
    ++served;
    if (!write_frame(stream, response)) break;
  }
  if (zombie.valid()) zombie.get();
  return served;
}

// ---------------------------------------------------------------------------
// Signals

namespace {
// Written by the signal handler (async-signal-safe), read by pollers.
std::atomic<int> g_shutdown_pipe_wr{-1};
std::atomic<Server*> g_signal_server{nullptr};

void on_shutdown_signal(int /*signo*/) {
  Server* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) server->request_shutdown();
  const int fd = g_shutdown_pipe_wr.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    // The pipe is never drained; one byte keeps every poller awake forever.
    [[maybe_unused]] ssize_t ignored = ::write(fd, &byte, 1);
  }
}

/// Initiate shutdown from regular (non-handler) code: flag the server and
/// make the never-drained self-pipe readable so every blocked poller —
/// idle connection reads included — wakes and drains.
void trigger_shutdown(Server& server) {
  server.request_shutdown();
  const int fd = g_shutdown_pipe_wr.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(fd, &byte, 1);
  }
}
}  // namespace

int install_shutdown_signals(Server& server) {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  g_signal_server.store(&server, std::memory_order_release);
  g_shutdown_pipe_wr.store(fds[1], std::memory_order_release);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_shutdown_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the server
  return fds[0];
}

// ---------------------------------------------------------------------------
// Transports: stdio and listeners

int run_stdio(Server& server, int wake_fd) {
  FdStream stream(STDIN_FILENO, STDOUT_FILENO, wake_fd);
  server.serve_stream(stream);
  return 0;
}

namespace {

/// Fixed worker pool draining accepted connection fds from a queue.
class ConnectionPool {
 public:
  ConnectionPool(Server& server, int wake_fd, std::uint32_t threads)
      : server_(server), wake_fd_(wake_fd) {
    for (std::uint32_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }

  void submit(int fd) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(fd);
    }
    cv_.notify_one();
  }

  /// Signal end-of-accepting and join. In-flight connections drain first.
  void drain() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  void worker() {
    for (;;) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
        if (queue_.empty()) return;  // done_ and nothing left
        fd = queue_.front();
        queue_.pop_front();
      }
      FdStream stream(fd, fd, wake_fd_);
      server_.serve_stream(stream);
      ::close(fd);
    }
  }

  Server& server_;
  int wake_fd_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<int> queue_;
  bool done_ = false;
};

int accept_loop(Server& server, int listen_fd, int wake_fd) {
  ConnectionPool pool(server, wake_fd,
                      std::max(1U, server.options().accept_threads));
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    const int nfds = wake_fd >= 0 ? 2 : 1;
    const int ready = ::poll(fds, static_cast<nfds_t>(nfds), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      // A fatal poll error is a shutdown: wake workers blocked in reads on
      // idle connections, or the pool.drain() below would join forever.
      trigger_shutdown(server);
      break;
    }
    if (nfds == 2 && (fds[1].revents & POLLIN) != 0) break;  // shutdown
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    pool.submit(conn);
  }
  ::close(listen_fd);
  pool.drain();
  return 0;
}

}  // namespace

int run_unix(Server& server, const std::string& path, int wake_fd) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("speckle_serve: socket");
    return 1;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "speckle_serve: socket path too long: %s\n",
                 path.c_str());
    ::close(fd);
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      // Never delete a random file that happens to sit at --unix.
      std::fprintf(stderr,
                   "speckle_serve: refusing to replace non-socket file: %s\n",
                   path.c_str());
      ::close(fd);
      return 1;
    }
    ::unlink(path.c_str());
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    std::perror("speckle_serve: bind/listen");
    ::close(fd);
    return 1;
  }
  const int rc = accept_loop(server, fd, wake_fd);
  ::unlink(path.c_str());
  return rc;
}

int run_tcp(Server& server, std::uint16_t port, int wake_fd) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("speckle_serve: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    std::perror("speckle_serve: bind/listen");
    ::close(fd);
    return 1;
  }
  return accept_loop(server, fd, wake_fd);
}

}  // namespace speckle::serve
