#include "serve/protocol.hpp"

#include "support/check.hpp"

namespace speckle::serve {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadFrame: return "bad-frame";
    case Status::kBadOpcode: return "bad-opcode";
    case Status::kBadRequest: return "bad-request";
    case Status::kUnknownGraph: return "unknown-graph";
    case Status::kUnknownScheme: return "unknown-scheme";
    case Status::kBadVertex: return "bad-vertex";
    case Status::kLoadFailed: return "load-failed";
    case Status::kTimeout: return "timeout";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kInternal: return "internal";
  }
  return "?";
}

void WireWriter::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::str(std::string_view s) {
  SPECKLE_CHECK(s.size() <= 0xffff, "wire string exceeds 64 KiB");
  u16(static_cast<std::uint16_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

bool WireReader::take(std::size_t count) {
  if (!ok_ || data_.size() - pos_ < count) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t WireReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  if (!take(2)) return 0;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(data_[pos_++]) << (8 * i)));
  }
  return v;
}

std::uint32_t WireReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::string WireReader::str() {
  const std::uint16_t len = u16();
  if (!take(len)) return {};
  std::string s(reinterpret_cast<const char*>(data_.data()) + pos_, len);
  pos_ += len;
  return s;
}

std::vector<std::uint8_t> make_frame(std::span<const std::uint8_t> payload) {
  SPECKLE_CHECK(payload.size() <= kMaxFrameBytes, "frame payload exceeds cap");
  std::vector<std::uint8_t> frame;
  frame.reserve(kFramePrefixBytes + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<std::uint8_t>(len >> shift));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::vector<std::uint8_t> make_request(Opcode op, std::uint32_t request_id,
                                       std::span<const std::uint8_t> body) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(request_id);
  std::vector<std::uint8_t> payload = w.take();
  payload.insert(payload.end(), body.begin(), body.end());
  return payload;
}

std::vector<std::uint8_t> make_response(Status status, std::uint32_t request_id,
                                        std::span<const std::uint8_t> body) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u32(request_id);
  std::vector<std::uint8_t> payload = w.take();
  payload.insert(payload.end(), body.begin(), body.end());
  return payload;
}

std::vector<std::uint8_t> make_error(Status status, std::uint32_t request_id,
                                     std::string_view message) {
  WireWriter body;
  body.str(message);
  return make_response(status, request_id, body.bytes());
}

}  // namespace speckle::serve
