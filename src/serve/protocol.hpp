#pragma once
/// \file protocol.hpp
/// The speckle_serve wire protocol: length-prefixed binary frames.
///
/// Every message — request or response — travels as one frame:
///
///   u32 payload_len (little-endian) | payload[payload_len]
///
/// payload_len is capped at kMaxFrameBytes; a larger prefix is a protocol
/// violation the peer answers with a kBadFrame error before closing (the
/// stream cannot be resynchronized past a lying prefix). An undersized but
/// well-delimited payload only fails the one request — the frame boundary
/// is still known, so the connection survives.
///
/// Request payload:   u8 opcode | u32 request_id | body...
/// Response payload:  u8 status | u32 request_id | body...
///
/// All scalars are little-endian; strings are u16 length + bytes (no
/// terminator). Request/response body layouts are documented opcode by
/// opcode in docs/serve.md, and the encode/decode helpers here are the
/// single source of truth both the server (session.cpp) and the client
/// (tools/speckle_client.cpp) compile against.
///
/// The decoder (WireReader) is total: malformed input can never abort or
/// read out of bounds — every getter bounds-checks and latches a failure
/// flag the caller turns into a typed kBadRequest/kBadFrame error.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace speckle::serve {

/// Payload byte cap. Generous for every real request (a 10k-edge mutation
/// batch is ~170 KB) while bounding what a hostile length prefix can make
/// the server allocate.
inline constexpr std::uint32_t kMaxFrameBytes = 1U << 20;

/// Frame prefix size and the minimum decodable payload (opcode + id).
inline constexpr std::size_t kFramePrefixBytes = 4;
inline constexpr std::size_t kPayloadHeaderBytes = 5;

enum class Opcode : std::uint8_t {
  kLoad = 1,    ///< load/generate a graph, deduped through the registry
  kColor = 2,   ///< color a loaded graph with a registered scheme
  kQuery = 3,   ///< vertex color / color count / graph stats
  kMutate = 4,  ///< edge insert/delete batch + incremental recolor
  kStats = 5,   ///< session/server counters
};
inline constexpr std::uint8_t kNumOpcodes = 5;

enum class Status : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,       ///< oversized/truncated frame or unparsable header
  kBadOpcode = 2,      ///< unknown opcode byte
  kBadRequest = 3,     ///< body failed to decode or violates preconditions
  kUnknownGraph = 4,   ///< handle not loaded in this session
  kUnknownScheme = 5,  ///< scheme name not in the registry
  kBadVertex = 6,      ///< vertex id out of range
  kLoadFailed = 7,     ///< graph generation / file read failed
  kTimeout = 8,        ///< per-request deadline expired (request failed,
                       ///< server lives on)
  kShuttingDown = 9,   ///< server is draining; request not accepted
  kInternal = 10,      ///< invariant violation server-side (never expected)
};

/// Stable lowercase identifier ("ok", "bad-frame", ...) for logs/goldens.
const char* status_name(Status s);

/// QUERY body selector.
enum class QueryWhat : std::uint8_t {
  kVertexColor = 0,
  kNumColors = 1,
  kGraphStats = 2,
};

/// Little-endian append-only payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// u16 length + raw bytes. Aborts if the string exceeds 64 KiB (callers
  /// build these from validated inputs, not from the wire).
  void str(std::string_view s);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian payload reader. Any over-read latches
/// ok() == false and getters return zero values from then on.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// True when the payload decoded cleanly with no trailing garbage.
  bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  bool take(std::size_t count);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Wrap a payload in a length-prefixed frame.
std::vector<std::uint8_t> make_frame(std::span<const std::uint8_t> payload);

/// Assemble a request payload (no frame prefix).
std::vector<std::uint8_t> make_request(Opcode op, std::uint32_t request_id,
                                       std::span<const std::uint8_t> body = {});

/// Assemble a response payload (no frame prefix).
std::vector<std::uint8_t> make_response(Status status, std::uint32_t request_id,
                                        std::span<const std::uint8_t> body = {});

/// Assemble a typed error response: status + request id + message string.
std::vector<std::uint8_t> make_error(Status status, std::uint32_t request_id,
                                     std::string_view message);

}  // namespace speckle::serve
