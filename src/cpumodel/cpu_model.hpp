#pragma once
/// \file cpu_model.hpp
/// A scalar CPU cost model for the sequential baseline.
///
/// The paper normalizes every GPU result to the sequential greedy algorithm
/// running on a Xeon E5-2670. To make simulated-GPU cycles and CPU time
/// commensurable (and deterministic), the sequential algorithm is charged
/// against this model while it runs functionally: every load/store probes a
/// three-level cache hierarchy (the actual host addresses of the data
/// structures are used, so locality is the real locality), and ALU work is
/// charged at a sustained IPC. Out-of-order overlap is folded into the
/// per-level effective latencies.
///
/// Wall-clock timings of the real code are reported alongside in the
/// benches; the *figures* use model cycles on both sides.

#include <cstdint>

#include "simt/cache.hpp"

namespace speckle::cpumodel {

struct CpuConfig {
  double clock_ghz = 2.6;  ///< Xeon E5-2670
  std::uint32_t line_bytes = 64;
  std::uint64_t l1_bytes = 32 * 1024;
  std::uint32_t l1_ways = 8;
  std::uint64_t l2_bytes = 256 * 1024;
  std::uint32_t l2_ways = 8;
  std::uint64_t l3_bytes = 20 * 1024 * 1024;
  std::uint32_t l3_ways = 16;
  /// Effective (overlap-adjusted) access costs in CPU cycles.
  double l1_cost = 1.0;
  double l2_cost = 4.0;
  double l3_cost = 10.0;
  double dram_cost = 50.0;
  double ipc = 2.0;  ///< sustained scalar instructions per cycle

  static CpuConfig xeon_e5_2670() { return CpuConfig{}; }

  /// Capacity-scaled copy for reduced-scale experiments (see
  /// simt::DeviceConfig::scaled): cache sizes shrink by `denom`, rates stay.
  CpuConfig scaled(std::uint32_t denom) const;
};

class CpuModel {
 public:
  explicit CpuModel(CpuConfig config = CpuConfig::xeon_e5_2670());

  /// Charge a read/write of `bytes` at host address `p`.
  void touch_read(const void* p, std::size_t bytes = 4);
  void touch_write(const void* p, std::size_t bytes = 4);
  /// Charge `n` ALU instructions.
  void compute(std::uint32_t n = 1);

  double cycles() const { return cycles_; }
  double ms() const { return cycles_ / (config_.clock_ghz * 1e6); }

  std::uint64_t l1_misses() const { return l1_.misses(); }
  std::uint64_t dram_accesses() const { return dram_accesses_; }

  const CpuConfig& config() const { return config_; }

 private:
  void touch(const void* p, std::size_t bytes);

  CpuConfig config_;
  simt::CacheModel l1_;
  simt::CacheModel l2_;
  simt::CacheModel l3_;
  double cycles_ = 0.0;
  std::uint64_t dram_accesses_ = 0;
};

}  // namespace speckle::cpumodel
