#include "cpumodel/cpu_model.hpp"

namespace speckle::cpumodel {

CpuConfig CpuConfig::scaled(std::uint32_t denom) const {
  CpuConfig scaled = *this;
  auto shrink = [&](std::uint64_t bytes, std::uint32_t ways) {
    const std::uint64_t unit = static_cast<std::uint64_t>(line_bytes) * ways;
    const std::uint64_t target = bytes / denom < unit ? unit : bytes / denom;
    return target / unit * unit;
  };
  scaled.l1_bytes = shrink(l1_bytes, l1_ways);
  scaled.l2_bytes = shrink(l2_bytes, l2_ways);
  scaled.l3_bytes = shrink(l3_bytes, l3_ways);
  return scaled;
}

CpuModel::CpuModel(CpuConfig config)
    : config_(config),
      l1_(config.l1_bytes, config.line_bytes, config.l1_ways),
      l2_(config.l2_bytes, config.line_bytes, config.l2_ways),
      l3_(config.l3_bytes, config.line_bytes, config.l3_ways) {}

void CpuModel::touch(const void* p, std::size_t bytes) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uint64_t first = addr / config_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / config_.line_bytes;
  for (std::uint64_t line = first; line <= last; ++line) {
    const std::uint64_t line_addr = line * config_.line_bytes;
    if (l1_.access(line_addr)) {
      cycles_ += config_.l1_cost;
    } else if (l2_.access(line_addr)) {
      cycles_ += config_.l2_cost;
    } else if (l3_.access(line_addr)) {
      cycles_ += config_.l3_cost;
    } else {
      cycles_ += config_.dram_cost;
      ++dram_accesses_;
    }
  }
}

void CpuModel::touch_read(const void* p, std::size_t bytes) { touch(p, bytes); }

void CpuModel::touch_write(const void* p, std::size_t bytes) { touch(p, bytes); }

void CpuModel::compute(std::uint32_t n) { cycles_ += n / config_.ipc; }

}  // namespace speckle::cpumodel
